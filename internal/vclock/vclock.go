// Package vclock provides a pluggable clock for the stack's timers.
//
// Production code uses Real(), a thin wrapper over the time package.
// Tests use Virtual, a manually-advanced clock with a deterministic
// timer queue: timers scheduled for the same instant fire in the order
// they were created, and Advance runs every timer in the window on the
// caller's goroutine, so a whole simulated network settles with no
// wall-clock waiting and no scheduling races.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Timer is a handle to a pending callback, mirroring *time.Timer's
// AfterFunc form.
type Timer interface {
	// Stop cancels the timer; it reports whether the timer was still
	// pending (false when it already fired or was stopped).
	Stop() bool
}

// Clock abstracts "now" and one-shot callbacks. It is the only timing
// surface the stack needs: periodic work is re-armed from within the
// callback, as BSD's timeout() users do.
type Clock interface {
	Now() time.Time
	AfterFunc(d time.Duration, f func()) Timer
}

// ---------------------------------------------------------------------
// Real clock
// ---------------------------------------------------------------------

type realClock struct{}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// Real returns the wall-clock implementation used in production.
func Real() Clock { return realClock{} }

// ---------------------------------------------------------------------
// Virtual clock
// ---------------------------------------------------------------------

// Virtual is a manually-advanced clock. Time only moves when Advance,
// AdvanceTo, or Step is called; due timers run synchronously on the
// advancing goroutine with Now() pinned to each timer's deadline, in
// (deadline, creation order) order. Callbacks may schedule new timers;
// those fire too if they land inside the window being advanced.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64
	heap timerHeap
}

// NewVirtual returns a virtual clock starting at epoch. Any fixed
// epoch works; tests compare durations, not absolute dates.
func NewVirtual(epoch time.Time) *Virtual {
	return &Virtual{now: epoch}
}

type vtimer struct {
	when    time.Time
	seq     uint64
	fn      func()
	clock   *Virtual
	index   int // heap index, -1 once fired or stopped
	stopped bool
}

func (t *vtimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.index < 0 || t.stopped {
		return false
	}
	t.stopped = true
	heap.Remove(&t.clock.heap, t.index)
	t.index = -1
	return true
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc schedules f to run when the clock is advanced past d from
// now. Non-positive d fires at the current instant on the next
// advance (Advance(0) runs it).
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &vtimer{when: v.now.Add(d), seq: v.seq, fn: f, clock: v}
	v.seq++
	heap.Push(&v.heap, t)
	return t
}

// Pending reports how many timers are scheduled.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.heap)
}

// NextAt returns the deadline of the earliest pending timer. ok is
// false when no timer is pending.
func (v *Virtual) NextAt() (when time.Time, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.heap) == 0 {
		return time.Time{}, false
	}
	return v.heap[0].when, true
}

// Advance moves time forward by d, firing every timer whose deadline
// falls in the window (including ones scheduled by earlier callbacks
// within the same window). Callbacks run without the clock lock held.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.advanceToLocked(v.now.Add(d))
}

// AdvanceTo moves time forward to t (no-op if t is in the past).
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	v.advanceToLocked(t)
}

// Step fires the earliest pending timer (advancing time to its
// deadline) and reports whether one fired.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	if len(v.heap) == 0 {
		v.mu.Unlock()
		return false
	}
	v.advanceToLocked(v.heap[0].when)
	return true
}

// advanceToLocked is the advance engine. Called with mu held; returns
// with mu released.
func (v *Virtual) advanceToLocked(target time.Time) {
	for len(v.heap) > 0 && !v.heap[0].when.After(target) {
		t := heap.Pop(&v.heap).(*vtimer)
		t.index = -1
		if t.when.After(v.now) {
			v.now = t.when
		}
		fn := t.fn
		v.mu.Unlock()
		fn()
		v.mu.Lock()
	}
	if target.After(v.now) {
		v.now = target
	}
	v.mu.Unlock()
}

// ---------------------------------------------------------------------
// timer heap
// ---------------------------------------------------------------------

type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*vtimer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
