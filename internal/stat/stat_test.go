package stat

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Get() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(41)
	if c.Get() != 42 {
		t.Fatalf("got %d", c.Get())
	}
	if s := fmt.Sprintf("%v", &c); s != "42" {
		t.Fatalf("String: %q", s)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Get() != 8000 {
		t.Fatalf("lost increments: %d", c.Get())
	}
}
