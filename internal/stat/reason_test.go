package stat

import (
	"encoding/json"
	"testing"
	"time"
)

// TestReasonTaxonomyAudit walks the whole taxonomy: every Reason must
// carry a stable, unique, non-empty name — the property snapshot diffs
// and the drop-reason audit depend on.
func TestReasonTaxonomyAudit(t *testing.T) {
	seen := make(map[string]Reason)
	for r := ReasonNone + 1; int(r) <= NumReasons(); r++ {
		name := r.String()
		if name == "" || name == "unknown" {
			t.Fatalf("reason %d has no name", r)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("reasons %d and %d share the name %q", prev, r, name)
		}
		seen[name] = r
	}
	if Reason(200).String() != "unknown" {
		t.Fatal("out-of-range reason must render as unknown")
	}
}

func TestReasonsCounters(t *testing.T) {
	var rs Reasons
	rs.Inc(RUDPBadSum)
	rs.Inc(RUDPBadSum)
	rs.Inc(RV6BadHeader)
	rs.Inc(ReasonNone)          // ignored
	rs.Inc(Reason(reasonCount)) // ignored
	if got := rs.Get(RUDPBadSum); got != 2 {
		t.Fatalf("RUDPBadSum = %d, want 2", got)
	}
	if got := rs.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	snap := rs.Snapshot()
	if len(snap) != 2 || snap["udp-bad-checksum"] != 2 || snap["ip6-bad-header"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	// The snapshot must round-trip through JSON for ipbench -json.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]uint64
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back["udp-bad-checksum"] != 2 {
		t.Fatalf("round-trip = %v", back)
	}
}

func TestRecorderRingBoundsAndOrder(t *testing.T) {
	now := time.Unix(500, 0)
	r := NewRecorder(4)
	r.Now = func() time.Time { return now }
	for i := 0; i < 10; i++ {
		r.DropPkt(RV6BadHeader, []byte{byte(i)})
		now = now.Add(time.Second)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(7+i) {
			t.Fatalf("event %d seq = %d, want %d (oldest first)", i, ev.Seq, 7+i)
		}
		if ev.Pkt[0] != byte(6+i) {
			t.Fatalf("event %d pkt = %d", i, ev.Pkt[0])
		}
		if i > 0 && !evs[i-1].Time.Before(ev.Time) {
			t.Fatal("timestamps not monotone")
		}
	}
	if r.Reasons.Get(RV6BadHeader) != 10 {
		t.Fatal("counters must survive ring eviction")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Drop(RV6BadHeader)
	r.DropPkt(RV6BadHeader, []byte{1})
	r.DropNote(RV6BadHeader, "x")
	r.Ctl("y")
	if r.Events() != nil {
		t.Fatal("nil recorder must return no events")
	}
}

func TestRecorderSnapTruncation(t *testing.T) {
	r := NewRecorder(2)
	big := make([]byte, 4096)
	r.DropPkt(RV6Truncated, big)
	if got := len(r.Events()[0].Pkt); got != traceSnap {
		t.Fatalf("retained %d bytes, want %d", got, traceSnap)
	}
}

func TestSnapshotCounters(t *testing.T) {
	type fake struct {
		A    Counter
		B    Counter
		Name string // non-counter fields are skipped
	}
	var f fake
	f.A.Add(3)
	m := SnapshotCounters(&f)
	if len(m) != 2 || m["A"] != 3 || m["B"] != 0 {
		t.Fatalf("snapshot = %v", m)
	}
	if SnapshotCounters(nil) != nil || SnapshotCounters(42) != nil {
		t.Fatal("non-struct inputs must return nil")
	}
}
