package stat

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedFoldsExactly hammers a Sharded counter from concurrent
// workers — each bumping its own slot, plus a rogue one using an
// out-of-range index to exercise the mask — and checks the fold
// equals the exact number of bumps.  Sharding trades read cost for
// write scalability; it must never trade away a single count.
func TestShardedFoldsExactly(t *testing.T) {
	var c Sharded
	const workers, per = 23, 10_000 // > NumShards so slots are shared
	var wg sync.WaitGroup
	var want atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%3 == 0 {
					c.Add(w, 5)
					want.Add(5)
				} else {
					c.Inc(w)
					want.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Get(); got != want.Load() {
		t.Fatalf("folded %d, want %d", got, want.Load())
	}
}

// TestSnapshotCountersSeesSharded checks the reflective snapshot walk
// folds Sharded fields alongside plain Counters — the wiring that
// keeps netstat/Snapshot() totals exact after a hot counter is
// sharded.
func TestSnapshotCountersSeesSharded(t *testing.T) {
	var s struct {
		Plain Counter
		Hot   Sharded
	}
	s.Plain.Add(7)
	for w := 0; w < 5; w++ {
		s.Hot.Add(w, 100)
	}
	m := SnapshotCounters(&s)
	if m["Plain"] != 7 {
		t.Errorf("Plain = %d, want 7", m["Plain"])
	}
	if m["Hot"] != 500 {
		t.Errorf("Hot = %d, want 500 (fold across shards)", m["Hot"])
	}
}

// BenchmarkCounterParallel measures the contended single-atomic
// baseline: every goroutine bumps the same cache line.
func BenchmarkCounterParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	_ = c.Get()
}

// BenchmarkShardedParallel measures the sharded counter with each
// goroutine on its own slot — the netisr-worker access pattern.  The
// per-op cost should hold flat as GOMAXPROCS grows, where the plain
// Counter's climbs with cross-core traffic.
func BenchmarkShardedParallel(b *testing.B) {
	var c Sharded
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		w := int(next.Add(1)) - 1
		for pb.Next() {
			c.Inc(w)
		}
	})
	_ = c.Get()
	_ = runtime.GOMAXPROCS(0)
}
