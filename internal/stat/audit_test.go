package stat

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestEveryReasonHasADropSite audits the taxonomy against the code:
// every declared Reason must be incremented by at least one non-test
// drop site somewhere in the stack.  A reason with no call site means
// either a discard path lost its instrumentation in a refactor or the
// taxonomy carries a dead entry — both are bugs this test makes loud.
func TestEveryReasonHasADropSite(t *testing.T) {
	src, err := os.ReadFile("reason.go")
	if err != nil {
		t.Fatal(err)
	}
	// The reasonNames map literal names every reason exactly once.
	declRe := regexp.MustCompile(`(?m)^\t(R[A-Z][A-Za-z0-9]*):`)
	var declared []string
	for _, m := range declRe.FindAllStringSubmatch(string(src), -1) {
		if m[1] != "ReasonNone" {
			declared = append(declared, m[1])
		}
	}
	if len(declared) != NumReasons() {
		t.Fatalf("parsed %d reasons from reason.go, taxonomy has %d", len(declared), NumReasons())
	}

	used := make(map[string]int)
	useRe := regexp.MustCompile(`\bstat\.(R[A-Z][A-Za-z0-9]*)\b`)
	for _, root := range []string{"../../internal", "../../cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "stat" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range useRe.FindAllStringSubmatch(string(b), -1) {
				used[m[1]]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	sites := 0
	for _, r := range declared {
		n := used[r]
		if n == 0 {
			t.Errorf("reason %s is declared but no drop site increments it", r)
		}
		sites += n
	}
	for r := range used {
		found := false
		for _, d := range declared {
			if d == r {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("code references stat.%s which is not in the taxonomy", r)
		}
	}
	t.Logf("taxonomy: %d reasons, %d instrumented sites", len(declared), sites)
}
