package stat

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestEveryReasonHasADropSite audits the taxonomy against the code:
// every declared Reason must be incremented by at least one non-test
// drop site somewhere in the stack.  A reason with no call site means
// either a discard path lost its instrumentation in a refactor or the
// taxonomy carries a dead entry — both are bugs this test makes loud.
func TestEveryReasonHasADropSite(t *testing.T) {
	src, err := os.ReadFile("reason.go")
	if err != nil {
		t.Fatal(err)
	}
	// The reasonNames map literal names every reason exactly once.
	declRe := regexp.MustCompile(`(?m)^\t(R[A-Z][A-Za-z0-9]*):`)
	var declared []string
	for _, m := range declRe.FindAllStringSubmatch(string(src), -1) {
		if m[1] != "ReasonNone" {
			declared = append(declared, m[1])
		}
	}
	if len(declared) != NumReasons() {
		t.Fatalf("parsed %d reasons from reason.go, taxonomy has %d", len(declared), NumReasons())
	}

	used := make(map[string]int)
	useRe := regexp.MustCompile(`\bstat\.(R[A-Z][A-Za-z0-9]*)\b`)
	for _, root := range []string{"../../internal", "../../cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "stat" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range useRe.FindAllStringSubmatch(string(b), -1) {
				used[m[1]]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	sites := 0
	for _, r := range declared {
		n := used[r]
		if n == 0 {
			t.Errorf("reason %s is declared but no drop site increments it", r)
		}
		sites += n
	}
	for r := range used {
		found := false
		for _, d := range declared {
			if d == r {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("code references stat.%s which is not in the taxonomy", r)
		}
	}
	t.Logf("taxonomy: %d reasons, %d instrumented sites", len(declared), sites)
}

// TestEveryTCPCounterHasASource applies the same audit to the TCP
// Stats block: every stat.Counter field declared there must be bumped
// by at least one non-test call site in the tcp package.  This is the
// guard that keeps fast-path refactors honest — the header-prediction
// shortcut in particular must keep PredAck/PredDat/DelAcks wired, or
// netstat silently reports a dead fast path as "never taken".
func TestEveryTCPCounterHasASource(t *testing.T) {
	src, err := os.ReadFile("../tcp/tcp.go")
	if err != nil {
		t.Fatal(err)
	}
	block := regexp.MustCompile(`(?s)type Stats struct \{.*?\n\}`).Find(src)
	if block == nil {
		t.Fatal("no Stats struct found in ../tcp/tcp.go")
	}
	// Sharded counters are Counters that traded a single atomic for
	// per-worker slots; the audit treats them identically.
	fieldRe := regexp.MustCompile(`(?m)^\t([A-Z][A-Za-z0-9]*)\s+stat\.(?:Counter|Sharded)`)
	var fields []string
	for _, m := range fieldRe.FindAllStringSubmatch(string(block), -1) {
		fields = append(fields, m[1])
	}
	if len(fields) < 10 {
		t.Fatalf("parsed only %d counter fields; struct regex out of date", len(fields))
	}
	// The must-list pins the counters whose loss a refactor would most
	// plausibly hide: the header-prediction shortcut, the stateless
	// connection-demux machinery (SYN cookies, compressed TIME_WAIT)
	// and the batched-datapath engines (GRO/GSO), whose silent death
	// would read as "batching never engaged".
	for _, must := range []string{
		"PredAck", "PredDat", "DelAcks",
		"SynCookiesSent", "SynCookiesValidated", "SynCookiesFailed",
		"TimeWaitRecycled", "TimeWaitOverflow",
		"GROCoalesced", "GROFlushes", "GSOSegs", "GSOSplits",
	} {
		found := false
		for _, f := range fields {
			if f == must {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fast-path counter %s missing from the TCP Stats struct", must)
		}
	}

	used := make(map[string]int)
	useRe := regexp.MustCompile(`\bStats\.([A-Z][A-Za-z0-9]*)\.(Inc|Add)\(`)
	ents, err := os.ReadDir("../tcp")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join("../tcp", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range useRe.FindAllStringSubmatch(string(b), -1) {
			used[m[1]]++
		}
	}

	sites := 0
	for _, f := range fields {
		n := used[f]
		if n == 0 {
			t.Errorf("counter Stats.%s is declared but never incremented", f)
		}
		sites += n
	}
	t.Logf("tcp stats: %d counters, %d instrumented sites", len(fields), sites)
}

// TestEveryIPsecCounterHasASource applies the source audit to the
// security module's Stats block: every counter must be bumped by a
// non-test site in the ipsec package.  The must-list pins the
// line-rate machinery — the PCB verdict cache, the replay window, and
// the inbound SA-lookup classification — whose silent death would read
// as "security is free" (cache) or "no attacks happened" (replay).
func TestEveryIPsecCounterHasASource(t *testing.T) {
	src, err := os.ReadFile("../ipsec/module.go")
	if err != nil {
		t.Fatal(err)
	}
	block := regexp.MustCompile(`(?s)type Stats struct \{.*?\n\}`).Find(src)
	if block == nil {
		t.Fatal("no Stats struct found in ../ipsec/module.go")
	}
	fieldRe := regexp.MustCompile(`(?m)^\t([A-Z][A-Za-z0-9]*)\s+stat\.(?:Counter|Sharded)`)
	var fields []string
	for _, m := range fieldRe.FindAllStringSubmatch(string(block), -1) {
		fields = append(fields, m[1])
	}
	if len(fields) < 8 {
		t.Fatalf("parsed only %d counter fields; struct regex out of date", len(fields))
	}
	for _, must := range []string{
		"OutCacheHits", "InReplay", "InNoSA",
		"InAuthFail", "InDecryptFail", "OutPolicyDrops",
	} {
		found := false
		for _, f := range fields {
			if f == must {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("line-rate counter %s missing from the ipsec Stats struct", must)
		}
	}

	used := make(map[string]int)
	useRe := regexp.MustCompile(`\bStats\.([A-Z][A-Za-z0-9]*)\.(Inc|Add)\(`)
	ents, err := os.ReadDir("../ipsec")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join("../ipsec", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range useRe.FindAllStringSubmatch(string(b), -1) {
			used[m[1]]++
		}
	}

	sites := 0
	for _, f := range fields {
		n := used[f]
		if n == 0 {
			t.Errorf("counter Stats.%s is declared but never incremented", f)
		}
		sites += n
	}
	t.Logf("ipsec stats: %d counters, %d instrumented sites", len(fields), sites)
}
