// Package stat provides the atomic event counters used by every
// protocol's statistics block.
//
// In 4.4 BSD the statistics the paper's modified netstat(8) displays
// are plain integers incremented at splnet; one big lock makes that
// safe.  This reproduction runs each stack across several goroutines
// (netisr, timers, socket callers), so counters are lock-free atomics
// instead — the same choice production Go stacks make.
package stat

import (
	"strconv"
	"sync/atomic"
)

// Counter is an atomically updated event counter. The zero value is
// ready to use. Counters must not be copied after first use.
type Counter struct {
	_ noCopy
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Get returns the current value.
func (c *Counter) Get() uint64 { return c.v.Load() }

// String renders the value, so counters print naturally with %v.
func (c *Counter) String() string { return strconv.FormatUint(c.Get(), 10) }

// noCopy triggers `go vet -copylocks` on accidental copies.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}
