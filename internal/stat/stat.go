// Package stat provides the atomic event counters used by every
// protocol's statistics block.
//
// In 4.4 BSD the statistics the paper's modified netstat(8) displays
// are plain integers incremented at splnet; one big lock makes that
// safe.  This reproduction runs each stack across several goroutines
// (netisr, timers, socket callers), so counters are lock-free atomics
// instead — the same choice production Go stacks make.
package stat

import (
	"strconv"
	"sync/atomic"
)

// Counter is an atomically updated event counter. The zero value is
// ready to use. Counters must not be copied after first use.
type Counter struct {
	_ noCopy
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Get returns the current value.
func (c *Counter) Get() uint64 { return c.v.Load() }

// String renders the value, so counters print naturally with %v.
func (c *Counter) String() string { return strconv.FormatUint(c.Get(), 10) }

// noCopy triggers `go vet -copylocks` on accidental copies.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// NumShards is the fixed slot count of a Sharded counter.  Sixteen
// covers any plausible NetisrWorkers without per-stack sizing, and a
// power of two lets Inc mask instead of divide.
const NumShards = 16

// shard is one cache-line-padded slot of a Sharded counter.  The pad
// keeps adjacent shards out of the same 64-byte line, so two workers
// bumping neighboring slots never ping-pong a cache line — the whole
// point of sharding.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// Sharded is an event counter split into per-worker slots, for
// counters hot enough that a single atomic becomes a cross-core
// contention point at high NetisrWorkers.  Writers bump their own
// slot (Inc/Add take the worker index); readers fold all slots with
// Get.  The fold reads each slot atomically, so Get is exact once
// writers are quiescent and never loses a bump — the same per-CPU
// counter discipline modern BSDs use for their stats.  The zero value
// is ready to use; must not be copied after first use.
type Sharded struct {
	_ noCopy
	s [NumShards]shard
}

// Inc adds one on the worker's slot.
func (c *Sharded) Inc(w int) { c.s[w&(NumShards-1)].v.Add(1) }

// Add adds n on the worker's slot.
func (c *Sharded) Add(w int, n uint64) { c.s[w&(NumShards-1)].v.Add(n) }

// Get folds every slot into the counter's total.
func (c *Sharded) Get() uint64 {
	var sum uint64
	for i := range c.s {
		sum += c.s[i].v.Load()
	}
	return sum
}

// String renders the folded value, so sharded counters print like
// plain ones with %v.
func (c *Sharded) String() string { return strconv.FormatUint(c.Get(), 10) }
