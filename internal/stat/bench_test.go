package stat

import (
	"sync/atomic"
	"testing"
)

// The pair below quantifies what sharding buys: every goroutine
// hammering one atomic word ping-pongs its cache line between cores,
// while per-worker slots let the same load scale with core count.

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkShardedIncParallel(b *testing.B) {
	var c Sharded
	var ticket atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		w := int(ticket.Add(1))
		for pb.Next() {
			c.Inc(w)
		}
	})
}
