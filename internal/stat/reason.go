// Drop-reason taxonomy and the flight recorder.
//
// The paper's only window into the stack is the modified netstat(8)
// (§4.3, §3.4): counters exist, but a packet that vanishes on an input
// path vanishes silently.  The taxonomy below names every discard the
// stack can perform; each silent `return` on an input path increments
// exactly one Reason, so a hostile-link run can be diffed down to *why*
// packets disappeared, not merely *that* they did.  The Recorder pairs
// the counter map with a bounded trace ring — the last N drop/control
// events with their virtual-clock timestamps — the way production
// stacks grew `netstat -s` plus drop-reason tracepoints.
package stat

import (
	"sync"
	"time"
)

// Reason identifies one packet-discard cause in the stack-wide
// taxonomy.  Reasons are stable identifiers: tests and snapshot diffs
// key on their names.
type Reason uint8

const (
	// ReasonNone is the zero Reason; it is never counted.
	ReasonNone Reason = iota

	// Link layer / netisr.
	RLinkFiltered // frame rejected by the MAC filter or a down interface
	RInqFull      // netisr input queue overflowed (BSD's IF_DROP)

	// IPv6 input (ipv6_input / preparse, §2.2).
	RV6BadHeader    // unparseable or short base header
	RV6Truncated    // payload shorter than the payload-length field
	RV6NotForUs     // not our address and not forwarding
	RV6BadExtChain  // malformed or misordered extension chain
	RV6OptionDrop   // option with a discard action (§2.1 option types)
	RV6RouteHdrErr  // malformed or unsatisfiable routing header
	RV6UnknownProt  // no transport registered for the final header
	RV6ReasmFail    // fragment rejected by the reassembly buffer
	RV6ReasmTimeout // reassembly abandoned: 60s elapsed without completion
	RV6HopLimit     // hop limit exhausted while forwarding
	RV6NoRoute      // no route while forwarding
	RV6TooBig       // forwarding would exceed the link MTU (PTB sent)
	RV6ReinjectLoop // decryption/reassembly reinjection depth exceeded

	// IPv4 input.
	RV4BadHeader    // unparseable header, bad checksum, or short packet
	RV4NotForUs     // not our address and not forwarding
	RV4UnknownProt  // no transport registered for the protocol field
	RV4ReasmFail    // fragment rejected by the reassembly buffer
	RV4ReasmTimeout // reassembly abandoned: lifetime elapsed incomplete
	RV4TTLExceeded  // TTL exhausted while forwarding
	RV4NoRoute      // no route while forwarding
	RArpBad         // malformed or self-addressed ARP packet

	// ICMPv6 (§4).
	RICMP6Short       // message shorter than the fixed header or body
	RICMP6BadSum      // pseudo-header checksum failure
	RNDBadHopLimit    // ND message without hop limit 255 (off-link forgery)
	RMLDBadHopLimit   // group message without hop limit 1 (off-link forgery)
	RMLDBadSource     // group message from a non-link-local source
	RICMP6CtlShort    // error message whose embedded offender is truncated
	RICMP6PolicyDrop  // echo suppressed by the input security policy
	RICMP6RateLimited // outbound error suppressed by the RFC 1885 token bucket
	RICMP6PTBClamped  // Packet Too Big below the IPv6 minimum MTU (forged PTB)

	// TCP input (§5.3).
	RTCPBadSum     // pseudo-header checksum failure
	RTCPBadHeader  // segment shorter than its own data offset
	RTCPNoPCB      // no matching connection (RST answered, segment dropped)
	RTCPPolicyDrop // segment suppressed by the input security policy

	// UDP input (§5.2).
	RUDPShort      // datagram shorter than its own length field
	RUDPBadSum     // pseudo-header checksum failure
	RUDPNoSum6     // IPv6 datagram illegally lacking a checksum
	RUDPNoPort     // no socket bound to the destination port
	RUDPPolicyDrop // datagram suppressed by the input security policy

	// IP security input/output (§3.3, §3.4).
	RSecAuthFail    // AH/ESP authenticator mismatch
	RSecNoSA        // no security association for the arriving SPI
	RSecDecryptFail // ESP payload would not decrypt or unpad
	RSecPolicyDrop  // cleartext packet a policy says must be protected
	RSecTunnelAddr  // inner/outer source mismatch on a tunneled datagram
	RSecNoSAOut     // required association unavailable on output (EIPSEC)
	RSecReplay      // sequence number outside or already in the replay window
	RSecBadICV      // AEAD ESP integrity check value failed
	RSecExpired     // association past its hard lifetime but not yet reaped
	RSecStaleSA     // SPI of a recently deleted association (rekey race)

	// Resource governance: induced discards when a ceiling is hit.
	RV6ReasmOverflow // reassembly quota evicted an in-progress v6 datagram
	RV4ReasmOverflow // reassembly quota evicted an in-progress v4 datagram
	RNbrCacheEvicted // neighbor-cache cap evicted a dynamic host route
	RNDQueueFull     // per-neighbor pending-packet queue overflowed
	RTCPSynOverflow  // listener SYN backlog dropped an embryonic connection
	RMbufLimit       // netisr queued-byte ceiling refused an input frame

	// Connection-demux governance (SYN cookies and the TIME_WAIT table).
	RTCPSynCookieFailed  // listener ACK failed SYN-cookie validation (forged or stale)
	RTCPTimeWaitOverflow // TIME_WAIT table cap evicted the oldest 2MSL record

	// Configured tunnels (6in4 / 4in6 / 6in6 decap, RFC 2473 rules).
	RTunNoEndpoint // encapsulated packet from no configured tunnel endpoint
	RTunBadHeader  // inner packet unparseable or wrong version for the mode
	RTunNestLimit  // RFC 2473 tunnel-nesting limit exceeded (encap loop)
	RTunMartian    // inner source is loopback/multicast/unspecified
	RTunAFMismatch // outer address family does not match the tunnel mode

	reasonCount // sentinel: number of reasons, keep last
)

// reasonNames maps each Reason to its stable snapshot key.
var reasonNames = [reasonCount]string{
	ReasonNone:        "none",
	RLinkFiltered:     "link-filtered",
	RInqFull:          "netisr-queue-full",
	RV6BadHeader:      "ip6-bad-header",
	RV6Truncated:      "ip6-truncated",
	RV6NotForUs:       "ip6-not-for-us",
	RV6BadExtChain:    "ip6-bad-ext-chain",
	RV6OptionDrop:     "ip6-option-discard",
	RV6RouteHdrErr:    "ip6-routing-header",
	RV6UnknownProt:    "ip6-unknown-proto",
	RV6ReasmFail:      "ip6-reasm-fail",
	RV6ReasmTimeout:   "ip6-reasm-timeout",
	RV6HopLimit:       "ip6-hop-limit",
	RV6NoRoute:        "ip6-no-route",
	RV6TooBig:         "ip6-too-big",
	RV6ReinjectLoop:   "ip6-reinject-loop",
	RV4BadHeader:      "ip4-bad-header",
	RV4NotForUs:       "ip4-not-for-us",
	RV4UnknownProt:    "ip4-unknown-proto",
	RV4ReasmFail:      "ip4-reasm-fail",
	RV4ReasmTimeout:   "ip4-reasm-timeout",
	RV4TTLExceeded:    "ip4-ttl-exceeded",
	RV4NoRoute:        "ip4-no-route",
	RArpBad:           "arp-bad-packet",
	RICMP6Short:       "icmp6-short",
	RICMP6BadSum:      "icmp6-bad-checksum",
	RNDBadHopLimit:    "nd-bad-hop-limit",
	RMLDBadHopLimit:   "mld-bad-hop-limit",
	RMLDBadSource:     "mld-bad-source",
	RICMP6CtlShort:    "icmp6-ctl-truncated",
	RICMP6PolicyDrop:  "icmp6-policy-drop",
	RICMP6RateLimited: "icmp6-rate-limited",
	RICMP6PTBClamped:  "icmp6-ptb-clamped",
	RTCPBadSum:        "tcp-bad-checksum",
	RTCPBadHeader:     "tcp-bad-header",
	RTCPNoPCB:         "tcp-no-pcb",
	RTCPPolicyDrop:    "tcp-policy-drop",
	RUDPShort:         "udp-short",
	RUDPBadSum:        "udp-bad-checksum",
	RUDPNoSum6:        "udp-missing-checksum6",
	RUDPNoPort:        "udp-no-port",
	RUDPPolicyDrop:    "udp-policy-drop",
	RSecAuthFail:      "ipsec-auth-fail",
	RSecNoSA:          "ipsec-no-sa",
	RSecDecryptFail:   "ipsec-decrypt-fail",
	RSecPolicyDrop:    "ipsec-policy-drop",
	RSecTunnelAddr:    "ipsec-tunnel-src",
	RSecNoSAOut:       "ipsec-no-sa-out",
	RSecReplay:        "ipsec-replay",
	RSecBadICV:        "ipsec-bad-icv",
	RSecExpired:       "ipsec-sa-expired",
	RSecStaleSA:       "ipsec-sa-stale",
	RV6ReasmOverflow:  "ip6-reasm-overflow",
	RV4ReasmOverflow:  "ip4-reasm-overflow",
	RNbrCacheEvicted:  "nd-cache-evicted",
	RNDQueueFull:      "nd-queue-overflow",
	RTCPSynOverflow:   "tcp-syn-overflow",
	RMbufLimit:        "mbuf-limit",

	RTCPSynCookieFailed:  "tcp-syn-cookie-failed",
	RTCPTimeWaitOverflow: "tcp-time-wait-overflow",

	RTunNoEndpoint: "tunnel-no-endpoint",
	RTunBadHeader:  "tunnel-bad-inner",
	RTunNestLimit:  "tunnel-nest-limit",
	RTunMartian:    "tunnel-martian",
	RTunAFMismatch: "tunnel-af-mismatch",
}

// String returns the reason's stable snapshot key.
func (r Reason) String() string {
	if int(r) < len(reasonNames) && reasonNames[r] != "" {
		return reasonNames[r]
	}
	return "unknown"
}

// NumReasons returns the size of the taxonomy (excluding ReasonNone);
// the audit test walks [1, NumReasons] asserting every entry is named.
func NumReasons() int { return int(reasonCount) - 1 }

// Reasons is the stack-wide drop-reason counter map, keyed by the
// Reason enum.  The zero value is ready to use; it must not be copied
// after first use.
type Reasons struct {
	_ noCopy
	c [reasonCount]Counter
}

// Inc counts one drop for the reason. ReasonNone and out-of-range
// values are ignored.
func (rs *Reasons) Inc(r Reason) {
	if r > ReasonNone && r < reasonCount {
		rs.c[r].Inc()
	}
}

// Get returns the count for one reason.
func (rs *Reasons) Get(r Reason) uint64 {
	if r >= reasonCount {
		return 0
	}
	return rs.c[r].Get()
}

// Total returns the sum over the whole taxonomy.
func (rs *Reasons) Total() uint64 {
	var t uint64
	for r := ReasonNone + 1; r < reasonCount; r++ {
		t += rs.c[r].Get()
	}
	return t
}

// Snapshot returns the non-zero counters keyed by reason name —
// JSON-serializable and diffable across runs.
func (rs *Reasons) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	for r := ReasonNone + 1; r < reasonCount; r++ {
		if v := rs.c[r].Get(); v != 0 {
			out[r.String()] = v
		}
	}
	return out
}

// TraceEvent is one flight-recorder entry: a drop or a received
// control (ICMP error) event, stamped with the stack's (virtual)
// clock.  Pkt holds the leading bytes of the discarded packet when the
// drop site had one; internal/dump renders it into a one-liner at
// query time so the hot path never pays for formatting.
type TraceEvent struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"` // "drop" or "ctl"
	Reason string    `json:"reason,omitempty"`
	Note   string    `json:"note,omitempty"` // src>dst or control detail
	Pkt    []byte    `json:"pkt,omitempty"`  // leading bytes of the packet
}

// traceSnap bounds how much of a dropped packet the ring retains —
// enough for dump to render addresses, the extension chain, and the
// transport header.
const traceSnap = 96

// Recorder is one stack's drop observability state: the Reasons
// counter map plus the bounded flight-recorder ring.  A nil *Recorder
// is valid and counts nothing, so modules assembled without a stack
// (unit tests) need no wiring.  All methods are safe for concurrent
// use.
type Recorder struct {
	Reasons Reasons
	// Now is the event timestamp source; the stack points it at its
	// (possibly virtual) clock. nil stamps zero times.
	Now func() time.Time

	mu   sync.Mutex
	ring []TraceEvent
	next int // ring insertion index
	seq  uint64
	size int
}

// NewRecorder creates a recorder whose trace ring keeps the last n
// events (n <= 0 disables the ring; counters still work).
func NewRecorder(n int) *Recorder {
	r := &Recorder{size: n}
	if n > 0 {
		r.ring = make([]TraceEvent, 0, n)
	}
	return r
}

// Drop counts a discard with no packet context.
func (r *Recorder) Drop(reason Reason) {
	if r == nil {
		return
	}
	r.Reasons.Inc(reason)
	r.record(TraceEvent{Kind: "drop", Reason: reason.String()})
}

// DropPkt counts a discard and records the packet's leading bytes in
// the trace ring.
func (r *Recorder) DropPkt(reason Reason, pkt []byte) {
	if r == nil {
		return
	}
	r.Reasons.Inc(reason)
	if len(pkt) > traceSnap {
		pkt = pkt[:traceSnap]
	}
	r.record(TraceEvent{Kind: "drop", Reason: reason.String(), Pkt: append([]byte(nil), pkt...)})
}

// DropNote counts a discard and records a caller-formatted note
// (src>dst addresses for sites that no longer hold the raw packet).
func (r *Recorder) DropNote(reason Reason, note string) {
	if r == nil {
		return
	}
	r.Reasons.Inc(reason)
	r.record(TraceEvent{Kind: "drop", Reason: reason.String(), Note: note})
}

// Ctl records a received or suppressed control event (ICMP errors,
// PMTU updates) in the trace ring without touching the counters.
func (r *Recorder) Ctl(note string) {
	if r == nil {
		return
	}
	r.record(TraceEvent{Kind: "ctl", Note: note})
}

func (r *Recorder) record(ev TraceEvent) {
	if r.size <= 0 {
		return
	}
	if r.Now != nil {
		ev.Time = r.Now()
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if len(r.ring) < r.size {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.next] = ev
	}
	r.next = (r.next + 1) % r.size
	r.mu.Unlock()
}

// Events returns the retained trace events, oldest first.
func (r *Recorder) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, 0, len(r.ring))
	if len(r.ring) == r.size {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}
