package stat

import "reflect"

// SnapshotCounters reads every Counter field of the struct pointed to
// by stats into a name → value map.  Protocol Stats blocks are plain
// structs of Counters, so one reflective walk keeps Stack.Snapshot()
// automatically in sync as counters are added — the structured
// equivalent of netstat(8) scraping its kernel symbols.
func SnapshotCounters(stats any) map[string]uint64 {
	v := reflect.ValueOf(stats)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return nil
	}
	v = v.Elem()
	if v.Kind() != reflect.Struct {
		return nil
	}
	ctype := reflect.TypeOf(Counter{})
	stype := reflect.TypeOf(Sharded{})
	out := make(map[string]uint64, v.NumField())
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if !f.CanAddr() {
			continue
		}
		switch f.Type() {
		case ctype:
			out[v.Type().Field(i).Name] = f.Addr().Interface().(*Counter).Get()
		case stype:
			out[v.Type().Field(i).Name] = f.Addr().Interface().(*Sharded).Get()
		}
	}
	return out
}
