package mbuf

import (
	"sync"
	"sync/atomic"
)

// The slab pool: BSD keeps mbufs and clusters on free lists so the
// datapath never goes to the allocator per packet; this is the same
// idea on sync.Pool, with a few size classes instead of the fixed
// MCLBYTES geometry.  Get hands out a single-segment packet whose
// slab has Headroom bytes of leading space, so each layer's Prepend
// lands in place and the whole wire image — transport header, IP
// header, payload — lives in one allocation for its entire life.
//
// Ownership rule (see DESIGN.md): a pooled packet is owned by exactly
// one party at a time.  Whoever consumes a packet terminally — the
// transport input routine after delivering its bytes into the socket
// layer, which copies — calls Free; everyone who stores packet bytes
// beyond the call must copy them first.  Free with poisoning enabled
// (SetPoison) overwrites the slab so any aliasing survivor reads
// garbage immediately instead of corrupting silently.

// Headroom is the leading space reserved in pooled slabs for headers
// prepended below the transport layer.  It is sized for the full
// encapsulation stack a packet can accrete on one node, so Prepend
// never spills into a new segment even under nested tunnels + IPsec
// (the classic lightweight-tunnel trap: headroom sized one layer deep
// costs a reallocation per nested encap).  The budget:
//
//	inner IPv6 header                40
//	ESP tunnel mode (hdr+IV+pad+ICV) 62
//	AH                               24
//	tunnel outer #1 (v6)             40
//	tunnel outer #2 (v6)             40
//	                                ---
//	                                206  → rounded up to 256
const Headroom = 256

// slabClasses are the pooled slab sizes. 512 covers bare ACKs and
// control packets plus headroom; 1792 an Ethernet MTU frame plus
// headroom; 9216 a jumbo/reassembled datagram; 65664 the largest UDP
// datagram before fragmentation.
var slabClasses = [...]int{512, 1792, 9216, 65664}

var slabPools [len(slabClasses)]sync.Pool

// Pool accounting: every slab handed out by getSlab is counted until
// putSlab sees it again, so a datapath that loses packets without
// freeing them shows up as monotonically growing Outstanding() — the
// leak detector the flood-soak tests assert on.
var (
	slabGets  atomic.Uint64
	slabFrees atomic.Uint64
	outBytes  atomic.Int64
)

// prependSpills counts Prepend calls on pooled packets that found too
// little leading space and fell back to allocating a new segment —
// each one is a headroom budget miss.  The encap no-realloc tests
// assert this stays zero through two levels of tunnel encapsulation.
var prependSpills atomic.Uint64

// PrependSpills returns the cumulative count of pooled-packet Prepend
// operations that could not land in the slab's leading space.
func PrependSpills() uint64 { return prependSpills.Load() }

// Outstanding returns the bytes of slab memory currently handed out
// and not yet freed, the live-mbuf gauge (BSD's mbstat m_mbufs in
// spirit).  Steady traffic holds it near zero between packets; growth
// proportional to traffic volume means a drop path lost a Free.
func Outstanding() int64 { return outBytes.Load() }

// PoolStats returns the monotonic slab get/free counters alongside the
// Outstanding gauge, for snapshots and leak audits.
func PoolStats() (gets, frees uint64, outstanding int64) {
	return slabGets.Load(), slabFrees.Load(), outBytes.Load()
}

var poison atomic.Bool

// SetPoison toggles poison-on-free: every freed slab is overwritten
// with 0xDB so use-after-free aliasing shows up as corrupt packets
// (and checksum failures) instead of silent flakiness. Debug/test use.
func SetPoison(on bool) { poison.Store(on) }

// Get returns a packet of length n in a single pooled segment with
// Headroom bytes of leading space. The contents are uninitialized —
// callers overwrite all n bytes. Free returns the slab to its pool.
func Get(n int) *Mbuf {
	total := n + Headroom
	slab := getSlab(total)
	m := &Mbuf{}
	seg := &m.seg0
	seg.data = slab[Headroom : Headroom+n]
	seg.slab = slab
	seg.off = Headroom
	m.head, m.tail = seg, seg
	m.hdr.Len = n
	return m
}

func getSlab(total int) []byte {
	for i, sz := range slabClasses {
		if total <= sz {
			slabGets.Add(1)
			outBytes.Add(int64(sz))
			if v := slabPools[i].Get(); v != nil {
				return *(v.(*[]byte))
			}
			return make([]byte, sz)
		}
	}
	// Oversize: plain allocation, never pooled (Free lets it GC).
	slabGets.Add(1)
	outBytes.Add(int64(total))
	return make([]byte, total)
}

// Free releases the packet's pooled slabs back to their pools and
// empties the chain. Only the packet's owner may call it, and the
// packet (and any slice into it) must not be used afterwards.
// Segments that are not pool-owned are simply dropped for the GC, so
// Free is always safe to call on any packet the caller owns.
func (m *Mbuf) Free() {
	if m == nil {
		return
	}
	for s := m.head; s != nil; {
		next := s.next
		if s.slab != nil {
			putSlab(s.slab)
			s.slab = nil
		}
		s.data, s.next = nil, nil
		s = next
	}
	m.head, m.tail = nil, nil
	m.hdr.Len = 0
}

func putSlab(slab []byte) {
	slabFrees.Add(1)
	outBytes.Add(-int64(cap(slab)))
	slab = slab[:cap(slab)]
	if poison.Load() {
		for i := range slab {
			slab[i] = 0xDB
		}
	}
	for i, sz := range slabClasses {
		if cap(slab) == sz {
			slabPools[i].Put(&slab)
			return
		}
	}
}
