package mbuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func chainOf(parts ...[]byte) *Mbuf {
	m := &Mbuf{}
	for _, p := range parts {
		m.Append(p)
	}
	return m
}

func TestEmpty(t *testing.T) {
	m := &Mbuf{}
	if m.Len() != 0 || m.Segments() != 0 {
		t.Fatalf("empty mbuf: len=%d segs=%d", m.Len(), m.Segments())
	}
	if got := m.Bytes(); len(got) != 0 {
		t.Fatalf("empty Bytes = %v", got)
	}
	if got := m.PullUp(0); got == nil {
		t.Fatalf("PullUp(0) on empty should return empty slice, got nil")
	}
	if got := m.PullUp(1); got != nil {
		t.Fatalf("PullUp(1) on empty = %v, want nil", got)
	}
}

func TestAppendPrependLen(t *testing.T) {
	m := New([]byte("world"))
	m.Prepend([]byte("hello "))
	if m.Len() != 11 {
		t.Fatalf("len = %d", m.Len())
	}
	if string(m.CopyBytes()) != "hello world" {
		t.Fatalf("contents = %q", m.CopyBytes())
	}
	if m.Segments() != 2 {
		t.Fatalf("segments = %d", m.Segments())
	}
}

func TestAppendEmptyNoop(t *testing.T) {
	m := New([]byte("x"))
	m.Append(nil)
	m.Prepend(nil)
	if m.Len() != 1 || m.Segments() != 1 {
		t.Fatalf("empty append changed chain: len=%d segs=%d", m.Len(), m.Segments())
	}
}

func TestNewCopies(t *testing.T) {
	src := []byte("abc")
	m := New(src)
	src[0] = 'X'
	if string(m.CopyBytes()) != "abc" {
		t.Fatal("New must copy its argument")
	}
}

func TestNewNoCopyAliases(t *testing.T) {
	src := []byte("abc")
	m := NewNoCopy(src)
	src[0] = 'X'
	if string(m.CopyBytes()) != "Xbc" {
		t.Fatal("NewNoCopy must alias its argument")
	}
}

func TestPullUp(t *testing.T) {
	m := chainOf([]byte("ab"), []byte("cd"), []byte("ef"))
	got := m.PullUp(5)
	if string(got) != "abcde" {
		t.Fatalf("PullUp(5) = %q", got)
	}
	if string(m.CopyBytes()) != "abcdef" {
		t.Fatalf("contents after PullUp = %q", m.CopyBytes())
	}
	if m.Len() != 6 {
		t.Fatalf("len changed: %d", m.Len())
	}
	// Already contiguous: no restructuring.
	segs := m.Segments()
	m.PullUp(3)
	if m.Segments() != segs {
		t.Fatal("PullUp restructured an already-contiguous prefix")
	}
	if m.PullUp(7) != nil {
		t.Fatal("PullUp beyond length should fail")
	}
	if m.PullUp(-1) != nil {
		t.Fatal("PullUp(-1) should fail")
	}
}

func TestPullUpCoalesceAll(t *testing.T) {
	m := chainOf([]byte("ab"), []byte("cd"))
	got := m.PullUp(4)
	if string(got) != "abcd" || m.Segments() != 1 {
		t.Fatalf("PullUp(all): %q segs=%d", got, m.Segments())
	}
	// Tail pointer must still be valid for appends.
	m.Append([]byte("ef"))
	if string(m.CopyBytes()) != "abcdef" {
		t.Fatalf("append after full PullUp = %q", m.CopyBytes())
	}
}

func TestBytesAliasing(t *testing.T) {
	m := chainOf([]byte("ab"), []byte("cd"))
	b := m.Bytes()
	b[0] = 'X'
	if string(m.CopyBytes()) != "Xbcd" {
		t.Fatal("Bytes must alias packet contents")
	}
}

func TestAdjFront(t *testing.T) {
	m := chainOf([]byte("abc"), []byte("def"))
	m.Adj(2)
	if string(m.CopyBytes()) != "cdef" || m.Len() != 4 {
		t.Fatalf("Adj(2): %q len=%d", m.CopyBytes(), m.Len())
	}
	m.Adj(1) // drops the remainder of the first segment exactly... 'c'
	if string(m.CopyBytes()) != "def" {
		t.Fatalf("Adj(1): %q", m.CopyBytes())
	}
}

func TestAdjFrontWholeSegments(t *testing.T) {
	m := chainOf([]byte("ab"), []byte("cd"), []byte("ef"))
	m.Adj(4)
	if string(m.CopyBytes()) != "ef" || m.Segments() != 1 {
		t.Fatalf("Adj(4): %q segs=%d", m.CopyBytes(), m.Segments())
	}
	m.Append([]byte("gh"))
	if string(m.CopyBytes()) != "efgh" {
		t.Fatalf("append after Adj: %q", m.CopyBytes())
	}
}

func TestAdjBack(t *testing.T) {
	m := chainOf([]byte("abc"), []byte("def"))
	m.Adj(-2)
	if string(m.CopyBytes()) != "abcd" || m.Len() != 4 {
		t.Fatalf("Adj(-2): %q len=%d", m.CopyBytes(), m.Len())
	}
	m.Append([]byte("XY"))
	if string(m.CopyBytes()) != "abcdXY" {
		t.Fatalf("append after Adj(-2): %q", m.CopyBytes())
	}
}

func TestAdjAll(t *testing.T) {
	for _, n := range []int{3, 5, -3, -9} {
		m := chainOf([]byte("ab"), []byte("c"))
		m.Adj(n)
		if m.Len() != 0 || m.Segments() != 0 {
			t.Fatalf("Adj(%d) should empty packet, len=%d", n, m.Len())
		}
	}
}

func TestSplitMidSegment(t *testing.T) {
	m := chainOf([]byte("abcd"), []byte("efgh"))
	tail := m.Split(2)
	if string(m.CopyBytes()) != "ab" || string(tail.CopyBytes()) != "cdefgh" {
		t.Fatalf("split: head=%q tail=%q", m.CopyBytes(), tail.CopyBytes())
	}
	if m.Len() != 2 || tail.Len() != 6 {
		t.Fatalf("lens: %d %d", m.Len(), tail.Len())
	}
	m.Append([]byte("ZZ"))
	tail.Append([]byte("!!"))
	if string(m.CopyBytes()) != "abZZ" || string(tail.CopyBytes()) != "cdefgh!!" {
		t.Fatalf("appends after split: %q %q", m.CopyBytes(), tail.CopyBytes())
	}
}

func TestSplitOnBoundary(t *testing.T) {
	m := chainOf([]byte("abcd"), []byte("efgh"))
	tail := m.Split(4)
	if string(m.CopyBytes()) != "abcd" || string(tail.CopyBytes()) != "efgh" {
		t.Fatalf("split: head=%q tail=%q", m.CopyBytes(), tail.CopyBytes())
	}
}

func TestSplitEdges(t *testing.T) {
	m := chainOf([]byte("abcd"))
	tail := m.Split(0)
	if m.Len() != 0 || string(tail.CopyBytes()) != "abcd" {
		t.Fatalf("split(0): head len=%d tail=%q", m.Len(), tail.CopyBytes())
	}
	m2 := chainOf([]byte("abcd"))
	tail2 := m2.Split(4)
	if tail2 == nil || tail2.Len() != 0 || m2.Len() != 4 {
		t.Fatalf("split(len): %v", tail2)
	}
	if m2.Split(5) != nil || m2.Split(-1) != nil {
		t.Fatal("out-of-range split must return nil")
	}
}

func TestSplitCopiesHeaderFlags(t *testing.T) {
	m := chainOf([]byte("abcd"))
	m.Hdr().Flags = MAuthentic | MDecrypted
	m.Hdr().AuxSPI = []uint32{256}
	tail := m.Split(2)
	if tail.Hdr().Flags != (MAuthentic | MDecrypted) {
		t.Fatal("split tail lost flags")
	}
	tail.Hdr().AuxSPI[0] = 999
	if m.Hdr().AuxSPI[0] != 256 {
		t.Fatal("AuxSPI must be deep-copied on split")
	}
}

func TestCat(t *testing.T) {
	a := chainOf([]byte("ab"))
	b := chainOf([]byte("cd"), []byte("ef"))
	b.Hdr().Flags = MAuthentic
	a.Cat(b)
	if string(a.CopyBytes()) != "abcdef" || a.Len() != 6 {
		t.Fatalf("cat: %q len=%d", a.CopyBytes(), a.Len())
	}
	if a.Hdr().Flags&MAuthentic == 0 {
		t.Fatal("cat must OR flags")
	}
	empty := &Mbuf{}
	empty.Cat(chainOf([]byte("x")))
	if string(empty.CopyBytes()) != "x" {
		t.Fatal("cat into empty failed")
	}
	empty.Cat(nil)
	empty.Cat(&Mbuf{})
	if empty.Len() != 1 {
		t.Fatal("cat of empty changed length")
	}
}

func TestCopyDeep(t *testing.T) {
	m := chainOf([]byte("ab"), []byte("cd"))
	m.Hdr().Flags = MDecrypted
	m.Hdr().RcvIf = "sim0"
	m.Hdr().AuxSPI = []uint32{7}
	c := m.Copy()
	c.Bytes()[0] = 'X'
	c.Hdr().AuxSPI[0] = 8
	if string(m.CopyBytes()) != "abcd" || m.Hdr().AuxSPI[0] != 7 {
		t.Fatal("Copy must be deep")
	}
	if c.Hdr().Flags != MDecrypted || c.Hdr().RcvIf != "sim0" {
		t.Fatal("Copy must preserve header")
	}
}

func TestCopyRange(t *testing.T) {
	m := chainOf([]byte("ab"), []byte("cdef"), []byte("gh"))
	if got := m.CopyRange(1, 5); string(got) != "bcdef" {
		t.Fatalf("CopyRange(1,5) = %q", got)
	}
	if got := m.CopyRange(0, 8); string(got) != "abcdefgh" {
		t.Fatalf("CopyRange(all) = %q", got)
	}
	if got := m.CopyRange(8, 0); got == nil || len(got) != 0 {
		t.Fatalf("CopyRange(len,0) = %v", got)
	}
	if m.CopyRange(7, 2) != nil || m.CopyRange(-1, 1) != nil || m.CopyRange(0, -1) != nil {
		t.Fatal("out-of-range CopyRange must return nil")
	}
}

func TestEqual(t *testing.T) {
	a := chainOf([]byte("ab"), []byte("cd"))
	b := chainOf([]byte("abcd"))
	if !Equal(a, b) {
		t.Fatal("segmentation must not affect equality")
	}
	c := chainOf([]byte("abce"))
	if Equal(a, c) {
		t.Fatal("different contents reported equal")
	}
}

// Property: for any data and any sequence of chunk boundaries, Split
// followed by Cat is the identity on contents.
func TestQuickSplitCatIdentity(t *testing.T) {
	f := func(data []byte, at uint16) bool {
		m := New(data)
		off := 0
		if len(data) > 0 {
			off = int(at) % (len(data) + 1)
		}
		tail := m.Split(off)
		m.Cat(tail)
		return bytes.Equal(m.CopyBytes(), data) && m.Len() == len(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Adj(front) then Adj(back) yields the matching subslice.
func TestQuickAdjSubslice(t *testing.T) {
	f := func(data []byte, a, b uint8) bool {
		front := int(a) % (len(data) + 1)
		back := int(b) % (len(data) - front + 1)
		m := New(data)
		m.Adj(front)
		m.Adj(-back)
		want := data[front : len(data)-back]
		return bytes.Equal(m.CopyBytes(), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random chain construction preserves contents and length.
func TestQuickChainContents(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(data []byte) bool {
		m := &Mbuf{}
		rest := data
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			m.Append(rest[:n])
			rest = rest[n:]
		}
		if !bytes.Equal(m.CopyBytes(), data) || m.Len() != len(data) {
			return false
		}
		// PullUp of a random prefix preserves everything.
		k := rng.Intn(len(data) + 1)
		m.PullUp(k)
		return bytes.Equal(m.CopyBytes(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPullUpNoop measures the m_pullup fast path: when the first
// segment already holds the requested bytes, PullUp must return them
// without copying or allocating — this is the case on every received
// packet whose headers arrived contiguous, i.e. nearly all of them.
func BenchmarkPullUpNoop(b *testing.B) {
	m := Get(1500)
	defer m.Free()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.PullUp(40) == nil {
			b.Fatal("PullUp failed")
		}
	}
}

// BenchmarkPullUpCoalesce measures the slow path for contrast: the
// requested bytes span segments, so PullUp builds a contiguous prefix.
func BenchmarkPullUpCoalesce(b *testing.B) {
	seg1 := make([]byte, 8)
	seg2 := make([]byte, 1492)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(seg1)
		m.Append(seg2)
		if m.PullUp(40) == nil {
			b.Fatal("PullUp failed")
		}
	}
}
