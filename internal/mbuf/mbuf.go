// Package mbuf implements BSD-style packet data chains.
//
// 4.4 BSD carries every packet through the kernel as a chain of "mbufs":
// fixed-size buffers linked by m_next, with the first mbuf of a packet
// carrying a packet header (m_pkthdr) that records the total length, the
// receiving interface, and per-packet flags.  The NRL IPv6 work extended
// the packet header in two ways this package reproduces:
//
//   - two new flags, M_AUTHENTIC and M_DECRYPTED, set by IP security
//     input processing when a packet passes Authentication Header or ESP
//     processing (and cleared again if the tunnel source-address checks
//     fail), and
//   - a back pointer from the packet to the sending socket, so that
//     ipsec_output_policy() can read the socket's requested security
//     level while the packet is already deep in the output path.
//
// A Mbuf here is a chain of segments rather than 128-byte clusters; what
// matters for the reproduction is the chain structure (headers are
// prepended as separate segments, PullUp linearizes on demand) and the
// packet-header metadata, not the allocator geometry.
package mbuf

import (
	"bytes"
	"fmt"

	"bsd6/internal/inet"
)

// Packet flags carried in the packet header. MAuthentic and MDecrypted
// are the NRL additions described in the paper's §3.4.
const (
	MBcast     = 1 << iota // received as a link-level broadcast
	MMcast                 // received as a link-level multicast
	MAuthentic             // packet passed AH authentication processing
	MDecrypted             // packet passed ESP decryption processing
	MLoop                  // looped back (sent and received on loopback)
	MFrag                  // packet is a fragment of a larger datagram
	MSumOK                 // transport checksum already verified (GRO)
)

// GSO is the segmentation-offload descriptor a transport attaches to
// a super-segment: the link boundary splits the packet into SegSize
// payload chunks behind a copy of the leading HdrLen header bytes,
// patching sequence numbers and checksums per frame (the software
// analog of NIC TSO).  Sums caches the folded (16-bit, not yet
// complemented) ones-complement sum of each payload chunk, computed
// for free while the transport built the packet, so the splitter
// folds pseudo-header + header + chunk without re-reading the
// payload.  The 16-bit partials add into a 32-bit accumulator without
// overflow however many chunks a frame combines.
type GSO struct {
	SegSize int      // payload bytes per wire frame (the connection MSS)
	HdrLen  int      // leading bytes replicated onto every frame
	Sums    []uint32 // per-chunk folded payload sums, in order
	// PathMTU is the route MTU the IP output path resolved — the
	// split threshold.  The interface MTU alone is not enough: a
	// super-segment smaller than the first hop can still exceed a
	// narrower link downstream, which the unbatched sender respects
	// through its PMTU-derived MSS.  0 means not resolved (the link
	// boundary falls back to the interface MTU).
	PathMTU int
}

// PktHdr is the per-packet header present on the first mbuf of a chain
// (BSD's m_pkthdr).
type PktHdr struct {
	Len    int    // total length of the chain
	RcvIf  string // name of the receiving interface, "" on output
	Flags  int    // MBcast, MMcast, MAuthentic, MDecrypted, ...
	Socket any    // back pointer to the sending socket (NRL addition)

	// AuxSPI records the SPIs of security associations already applied
	// to this packet on input, so the transport-layer policy check can
	// tell *which* associations protected the data.
	AuxSPI []uint32

	// Worker is the netisr worker index that is carrying this packet
	// up the stack, so hot transport counters can bump their own
	// shard (stat.Sharded) instead of a contended global atomic.
	Worker int

	// Encap counts tunnel encapsulations this packet has traversed on
	// this node — incremented on every tunnel encap and decap, checked
	// against the configured nesting limit (RFC 2473 "Tunnel
	// Encapsulation Limit" in spirit) so a tunnel routed into itself
	// terminates deterministically instead of recursing.
	Encap uint8

	// GSO, when non-nil, marks a transport-built super-segment to be
	// split into SegSize frames at the link boundary.
	GSO *GSO

	// GRO, when non-nil, carries receive-coalescing metadata: the
	// transport-defined record of the original segment boundaries
	// merged into this super-segment, so transport input can replay
	// per-segment effects (ACK cadence, window history) exactly.
	GRO any
}

// segment is one buffer in the chain (an mbuf without a packet header).
//
// A segment backed by a pooled slab (slab != nil) keeps the invariant
// data == slab[off : off+len(data)]: Adj, PullUp and Prepend maintain
// off so the slab's spare front capacity can absorb prepended headers
// in place, and Free can return the whole slab to its pool.
type segment struct {
	data []byte
	next *segment
	slab []byte // pooled backing array, nil when not pool-owned
	off  int    // start of data within slab
}

// Mbuf is a packet: a chain of data segments plus a packet header.
// The zero value is an empty packet.
type Mbuf struct {
	hdr  PktHdr
	head *segment
	tail *segment
	// seg0 is the inline first segment: single-segment packets (the
	// overwhelming majority) cost one allocation instead of two.  It
	// is claimed only while virgin, by whichever constructor or first
	// Append touches the packet.
	seg0 segment
}

// firstSeg returns the inline segment if it has never been used,
// otherwise a fresh allocation.
func (m *Mbuf) firstSeg() *segment {
	if m.seg0.data == nil && m.seg0.slab == nil && m.seg0.next == nil {
		return &m.seg0
	}
	return &segment{}
}

// New builds a packet holding a copy of data.
func New(data []byte) *Mbuf {
	m := &Mbuf{}
	m.Append(data)
	return m
}

// NewNoCopy builds a packet that takes ownership of data without copying.
// The caller must not modify data afterwards.
func NewNoCopy(data []byte) *Mbuf {
	m := &Mbuf{}
	if len(data) > 0 {
		seg := &m.seg0
		seg.data = data
		m.head, m.tail = seg, seg
		m.hdr.Len = len(data)
	}
	return m
}

// Hdr returns the packet header for inspection and modification.
func (m *Mbuf) Hdr() *PktHdr { return &m.hdr }

// Len returns the total number of bytes in the chain.
func (m *Mbuf) Len() int { return m.hdr.Len }

// Segments returns the number of segments in the chain.
func (m *Mbuf) Segments() int {
	n := 0
	for s := m.head; s != nil; s = s.next {
		n++
	}
	return n
}

// Append adds a copy of data at the tail of the chain.
func (m *Mbuf) Append(data []byte) {
	if len(data) == 0 {
		return
	}
	var seg *segment
	if m.tail == nil {
		seg = m.firstSeg()
		m.head, m.tail = seg, seg
	} else {
		seg = &segment{}
		m.tail.next = seg
		m.tail = seg
	}
	seg.data = append([]byte(nil), data...)
	m.hdr.Len += len(data)
}

// Prepend adds a copy of data at the head of the chain.  This is how
// each protocol layer contributes its header on the output path
// (BSD's M_PREPEND).  When the first segment is a pooled slab with
// enough spare front capacity (leading space, as M_LEADINGSPACE), the
// header is written into it in place — no new segment, no allocation.
func (m *Mbuf) Prepend(data []byte) {
	if len(data) == 0 {
		return
	}
	if h := m.head; h != nil && h.slab != nil && h.off >= len(data) {
		h.off -= len(data)
		copy(h.slab[h.off:], data)
		h.data = h.slab[h.off : h.off+len(data)+len(h.data)]
		m.hdr.Len += len(data)
		return
	}
	if m.head != nil && m.head.slab != nil {
		// A pooled packet ran out of leading space: the header goes
		// into a fresh segment, i.e. Headroom was sized too small for
		// this encap stack.  Counted so tests can prove it never
		// happens on the supported paths.
		prependSpills.Add(1)
	}
	seg := &segment{data: append([]byte(nil), data...), next: m.head}
	m.head = seg
	if m.tail == nil {
		m.tail = seg
	}
	m.hdr.Len += len(data)
}

// AppendNoCopy adds data at the tail of the chain without copying,
// taking ownership: the caller must not modify data afterwards.
func (m *Mbuf) AppendNoCopy(data []byte) {
	if len(data) == 0 {
		return
	}
	var seg *segment
	if m.tail == nil {
		seg = m.firstSeg()
		m.head, m.tail = seg, seg
	} else {
		seg = &segment{}
		m.tail.next = seg
		m.tail = seg
	}
	seg.data = data
	m.hdr.Len += len(data)
}

// Cat appends the segments of n to m, transferring ownership. n must not
// be used afterwards. Packet-header flags of n are ORed into m.
func (m *Mbuf) Cat(n *Mbuf) {
	if n == nil || n.head == nil {
		return
	}
	if m.tail == nil {
		m.head, m.tail = n.head, n.tail
	} else {
		m.tail.next = n.head
		m.tail = n.tail
	}
	m.hdr.Len += n.hdr.Len
	m.hdr.Flags |= n.hdr.Flags
	n.head, n.tail, n.hdr.Len = nil, nil, 0
}

// PullUp guarantees that the first n bytes of the packet are contiguous
// in the first segment and returns them. It returns nil if the packet is
// shorter than n. This is BSD's m_pullup: protocol input routines call
// it before overlaying header structures on the data.
func (m *Mbuf) PullUp(n int) []byte {
	if n < 0 || n > m.hdr.Len {
		return nil
	}
	if n == 0 {
		return []byte{}
	}
	if len(m.head.data) >= n {
		// Fast path: the first segment already holds the bytes — no
		// copy, no new segment.
		return m.head.data[:n]
	}
	// Coalesce exactly n bytes into a new first segment; a partially
	// consumed segment is trimmed in place and keeps the remainder of
	// the chain intact (the old code copied whole segments past n).
	buf := make([]byte, 0, n)
	s := m.head
	for len(buf) < n {
		need := n - len(buf)
		if len(s.data) <= need {
			buf = append(buf, s.data...)
			s = s.next
		} else {
			buf = append(buf, s.data[:need]...)
			s.data = s.data[need:]
			s.off += need
		}
	}
	first := &segment{data: buf, next: s}
	m.head = first
	if s == nil {
		m.tail = first
	}
	return m.head.data[:n]
}

// Bytes linearizes the whole chain into a single contiguous slice and
// returns it. After Bytes the chain has one segment; the returned slice
// aliases it, so callers may modify packet contents in place.
func (m *Mbuf) Bytes() []byte {
	if m.head == nil {
		return []byte{}
	}
	if m.head.next == nil {
		return m.head.data
	}
	return m.PullUp(m.hdr.Len)
}

// SegmentViews returns a view of each non-empty chain segment's bytes,
// in stream order, without copying or restructuring the chain.  The
// views alias the packet and die with it.  Chain-aware consumers (the
// GRO delivery path) use this to walk a coalesced train segment by
// segment instead of linearizing it.
func (m *Mbuf) SegmentViews() [][]byte {
	var out [][]byte
	for s := m.head; s != nil; s = s.next {
		if len(s.data) > 0 {
			out = append(out, s.data)
		}
	}
	return out
}

// CopySum copies the whole chain into dst while accumulating the
// ones-complement checksum of the copied bytes — the split-buffer
// form of BSD's in_cksum-with-copy fusion, so gathering a chain into
// a wire buffer and checksumming it costs one traversal instead of
// two.  dst must hold Len() bytes; the chain is not altered.  The
// returned accumulator (initial included) is unfolded, ready for
// inet.Fold.  Odd-length segments are handled by byte-swapping the
// partial sum at each odd stream offset (RFC 1071 §2(B)), so the
// result is identical to summing the linearized packet.
func (m *Mbuf) CopySum(initial uint32, dst []byte) uint32 {
	sum := uint64(initial)
	odd := false
	for s := m.head; s != nil; s = s.next {
		f := uint32(inet.FoldRaw(inet.SumCopy(0, dst, s.data)))
		if odd {
			f = f>>8 | f&0xff<<8
		}
		sum += uint64(f)
		if len(s.data)&1 == 1 {
			odd = !odd
		}
		dst = dst[len(s.data):]
	}
	// Deferred carries back to the unfolded 32-bit form.
	sum = sum>>32 + sum&0xffffffff
	sum = sum>>32 + sum&0xffffffff
	return uint32(sum)
}

// CopyBytes returns a copy of the packet contents without altering the
// chain structure.
func (m *Mbuf) CopyBytes() []byte {
	buf := make([]byte, 0, m.hdr.Len)
	for s := m.head; s != nil; s = s.next {
		buf = append(buf, s.data...)
	}
	return buf
}

// Copy returns a deep copy of the packet, including the packet header.
// The copy is flattened into a single segment: one allocation however
// many segments the original has.
func (m *Mbuf) Copy() *Mbuf {
	n := &Mbuf{hdr: m.hdr}
	n.hdr.AuxSPI = append([]uint32(nil), m.hdr.AuxSPI...)
	n.hdr.Len = 0
	if m.hdr.Len > 0 {
		buf := make([]byte, 0, m.hdr.Len)
		for s := m.head; s != nil; s = s.next {
			buf = append(buf, s.data...)
		}
		n.AppendNoCopy(buf)
	}
	return n
}

// Adj trims bytes from the packet, as BSD's m_adj: positive n trims from
// the front, negative n trims -n bytes from the back. Trimming more than
// the packet holds empties it.
func (m *Mbuf) Adj(n int) {
	if n >= 0 {
		if n >= m.hdr.Len {
			m.head, m.tail, m.hdr.Len = nil, nil, 0
			return
		}
		m.hdr.Len -= n
		for n > 0 {
			if len(m.head.data) > n {
				m.head.data = m.head.data[n:]
				m.head.off += n
				return
			}
			n -= len(m.head.data)
			m.head = m.head.next
		}
		if m.head == nil {
			m.tail = nil
		}
		return
	}
	drop := -n
	if drop >= m.hdr.Len {
		m.head, m.tail, m.hdr.Len = nil, nil, 0
		return
	}
	keep := m.hdr.Len - drop
	m.hdr.Len = keep
	s := m.head
	for keep > len(s.data) {
		keep -= len(s.data)
		s = s.next
	}
	s.data = s.data[:keep]
	s.next = nil
	m.tail = s
}

// Split severs the packet at offset off, returning a new packet holding
// everything from off onward. The receiver keeps the first off bytes and
// the packet header; the tail packet gets a copy of the header with its
// length fixed up (BSD's m_split). Returns nil if off is out of range.
func (m *Mbuf) Split(off int) *Mbuf {
	if off < 0 || off > m.hdr.Len {
		return nil
	}
	tailLen := m.hdr.Len - off
	t := &Mbuf{hdr: m.hdr}
	t.hdr.AuxSPI = append([]uint32(nil), m.hdr.AuxSPI...)
	t.hdr.Len = 0
	if tailLen == 0 {
		return t
	}
	// Walk to the split point.
	s := m.head
	rem := off
	for s != nil && rem >= len(s.data) {
		rem -= len(s.data)
		s = s.next
	}
	if rem > 0 { // split lands inside segment s
		t.Append(s.data[rem:])
		s.data = s.data[:rem]
		for n := s.next; n != nil; n = n.next {
			t.Append(n.data)
		}
		s.next = nil
		m.tail = s
	} else { // split lands exactly on a segment boundary before s
		for n := s; n != nil; n = n.next {
			t.Append(n.data)
		}
		if off == 0 {
			m.head, m.tail = nil, nil
		} else {
			p := m.head
			for p.next != s {
				p = p.next
			}
			p.next = nil
			m.tail = p
		}
	}
	m.hdr.Len = off
	return t
}

// CopyRange copies n bytes starting at offset off into a fresh slice.
// It returns nil if the range is out of bounds (BSD's m_copydata).
func (m *Mbuf) CopyRange(off, n int) []byte {
	if off < 0 || n < 0 || off+n > m.hdr.Len {
		return nil
	}
	out := make([]byte, 0, n)
	s := m.head
	for s != nil && off >= len(s.data) {
		off -= len(s.data)
		s = s.next
	}
	for s != nil && n > 0 {
		chunk := s.data[off:]
		if len(chunk) > n {
			chunk = chunk[:n]
		}
		out = append(out, chunk...)
		n -= len(chunk)
		off = 0
		s = s.next
	}
	return out
}

// Equal reports whether two packets carry identical byte contents.
func Equal(a, b *Mbuf) bool {
	return a.Len() == b.Len() && bytes.Equal(a.CopyBytes(), b.CopyBytes())
}

// String summarizes the chain for diagnostics.
func (m *Mbuf) String() string {
	return fmt.Sprintf("mbuf{len=%d segs=%d flags=%#x}", m.hdr.Len, m.Segments(), m.hdr.Flags)
}
