package mbuf

import (
	"bytes"
	"testing"
	"testing/quick"

	"bsd6/internal/inet"
)

// CopySum must agree with flatten-then-checksum for any segmentation of
// the same bytes — in particular across odd-length segments, where the
// running sum continues at an odd stream offset and each segment's
// partial sum has to be byte-swapped into place (RFC 1071 §2(B)).

func TestCopySumAcrossSegments(t *testing.T) {
	cases := [][]int{
		{4},
		{1, 1, 1},
		{3, 5},
		{5, 3},
		{1, 8, 1, 8},
		{7, 7, 7, 7},
		{20, 1, 1500, 3},
		{0x20, 1, 0x20},
	}
	for _, lens := range cases {
		var parts [][]byte
		var flat []byte
		x := byte(1)
		for _, n := range lens {
			p := make([]byte, n)
			for i := range p {
				p[i] = x
				x = x*31 + 7
			}
			parts = append(parts, p)
			flat = append(flat, p...)
		}
		m := chainOf(parts...)
		if len(lens) > 1 && m.Segments() < 2 {
			t.Fatalf("%v: chain not segmented", lens)
		}
		dst := make([]byte, len(flat))
		got := inet.Fold(m.CopySum(0x2bad, dst))
		want := inet.Fold(inet.Sum(0x2bad, flat))
		if got != want {
			t.Fatalf("%v: CopySum %#x, flat %#x", lens, got, want)
		}
		if !bytes.Equal(dst, flat) {
			t.Fatalf("%v: copy mismatch", lens)
		}
	}
}

func TestQuickCopySumAnySplit(t *testing.T) {
	f := func(data []byte, seed uint32) bool {
		m := New(nil)
		r := seed
		for off := 0; off < len(data); {
			r = r*1664525 + 1013904223
			n := 1 + int(r%9)
			if off+n > len(data) {
				n = len(data) - off
			}
			m.Append(data[off : off+n])
			off += n
		}
		dst := make([]byte, len(data))
		return inet.Fold(m.CopySum(0, dst)) == inet.Checksum(data) &&
			bytes.Equal(dst, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
