package mbuf

import (
	"bytes"
	"testing"
)

// Two levels of tunnel encapsulation over a security-wrapped transport
// payload: the worst header stack the tunnel datapath composes.  The
// sizes mirror the Headroom budget table in pool.go.
const (
	innerHdr  = 40 // inner IPv6 header
	espHdr    = 62 // ESP tunnel-mode wrap (hdr+IV+pad+ICV)
	outerHdr1 = 40 // first tunnel outer header
	outerHdr2 = 40 // nested tunnel outer header
)

// encapStack prepends the full nested-encapsulation header stack onto
// a pooled packet, the way transport → IPsec → tunnel → tunnel would.
func encapStack(m *Mbuf) {
	m.Prepend(bytes.Repeat([]byte{0xa1}, innerHdr))
	m.Prepend(bytes.Repeat([]byte{0xa2}, espHdr))
	m.Prepend(bytes.Repeat([]byte{0xa3}, outerHdr1))
	m.Prepend(bytes.Repeat([]byte{0xa4}, outerHdr2))
}

// TestEncapPrependNoRealloc proves the Iurman et al. trap is closed:
// a pooled packet absorbs two levels of tunnel encapsulation (plus an
// IPsec wrap) entirely in its slab headroom — no spill into a new
// segment, no reallocation.  Poison-on-free is enabled so any aliasing
// the in-place arithmetic got wrong shows up as corrupt bytes.
func TestEncapPrependNoRealloc(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)

	for _, payload := range []int{1, 536, 1280, 1460} {
		before := PrependSpills()
		m := Get(payload)
		body := bytes.Repeat([]byte{0x5a}, payload)
		copy(m.Bytes(), body)

		encapStack(m)

		if got := m.Segments(); got != 1 {
			t.Fatalf("payload %d: %d segments after double encap, want 1 (Prepend spilled)", payload, got)
		}
		if got := PrependSpills() - before; got != 0 {
			t.Fatalf("payload %d: %d Prepend reallocations under two encap levels, want 0", payload, got)
		}
		wantLen := payload + innerHdr + espHdr + outerHdr1 + outerHdr2
		if m.Len() != wantLen {
			t.Fatalf("payload %d: len %d, want %d", payload, m.Len(), wantLen)
		}
		// Strip the stack again and verify the payload survived the
		// in-place arithmetic.
		m.Adj(innerHdr + espHdr + outerHdr1 + outerHdr2)
		if !bytes.Equal(m.Bytes(), body) {
			t.Fatalf("payload %d: payload corrupted by in-place encap", payload)
		}
		m.Free()
	}
}

// TestPrependSpillCounted pins the counter itself: exhausting the
// headroom must be visible as a spill, not silent.
func TestPrependSpillCounted(t *testing.T) {
	before := PrependSpills()
	m := Get(64)
	m.Prepend(make([]byte, Headroom+1)) // cannot fit by construction
	if got := PrependSpills() - before; got != 1 {
		t.Fatalf("oversized Prepend counted %d spills, want 1", got)
	}
	if m.Segments() != 2 {
		t.Fatalf("oversized Prepend left %d segments, want 2", m.Segments())
	}
	m.Free()
}

// BenchmarkEncapPrepend measures the double-encap header stack on the
// pooled fast path; the 0 allocs/op report is the perf half of the
// no-realloc proof.
func BenchmarkEncapPrepend(b *testing.B) {
	h1 := bytes.Repeat([]byte{0xa1}, innerHdr)
	h2 := bytes.Repeat([]byte{0xa2}, espHdr)
	h3 := bytes.Repeat([]byte{0xa3}, outerHdr1)
	h4 := bytes.Repeat([]byte{0xa4}, outerHdr2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := Get(1280)
		m.Prepend(h1)
		m.Prepend(h2)
		m.Prepend(h3)
		m.Prepend(h4)
		m.Free()
	}
	if PrependSpills() != 0 && b.N > 0 {
		// Other tests may have spilled deliberately; only fail if this
		// bench's own loop could have been the cause.
		b.Logf("note: process-wide Prepend spills = %d", PrependSpills())
	}
}
