package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
)

// Network is the in-memory admin plane: a name → Server registry
// whose Dial hands out connected net.Pipe endpoints, each served by
// its own goroutine.  It stands in for the per-node Unix/TCP admin
// listener a deployed fleet would run, and stays reachable while
// data-plane links are partitioned.  Safe for concurrent use.
type Network struct {
	mu      sync.Mutex
	servers map[string]*Server
}

// NewNetwork creates an empty admin plane.
func NewNetwork() *Network {
	return &Network{servers: make(map[string]*Server)}
}

// Register adds a server under its node name; duplicate names error.
func (n *Network) Register(s *Server) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.servers[s.Name()]; dup {
		return fmt.Errorf("admin: duplicate node name %q", s.Name())
	}
	n.servers[s.Name()] = s
	return nil
}

// Names lists every registered node, sorted.
func (n *Network) Names() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.servers))
	for name := range n.servers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Dial opens a connection to the named node's admin endpoint.  The
// returned conn speaks the line protocol; close it to release the
// serving goroutine.
func (n *Network) Dial(name string) (net.Conn, error) {
	n.mu.Lock()
	s := n.servers[name]
	n.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("admin: no node %q", name)
	}
	client, server := net.Pipe()
	go s.Serve(server)
	return client, nil
}

// Client wraps a protocol connection with typed request/response
// calls.  Not safe for concurrent use; open one per goroutine.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// NewClient speaks the protocol over an existing connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

// Connect dials name on the network and returns a ready client.
func Connect(n *Network, name string) (*Client, error) {
	conn, err := n.Dial(name)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Do sends one request and decodes the success response into out
// (which may be nil to discard it).  A status:"error" answer comes
// back as a Go error.
func (c *Client) Do(request string, args any, out any) error {
	req := Request{Request: request}
	if args != nil {
		raw, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("admin: encode arguments: %w", err)
		}
		req.Arguments = raw
	}
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("admin: send %s: %w", request, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return fmt.Errorf("admin: read %s response: %w", request, err)
	}
	if resp.Status != "success" {
		return fmt.Errorf("admin: %s: %s", request, resp.Error)
	}
	if out != nil {
		if err := json.Unmarshal(resp.Response, out); err != nil {
			return fmt.Errorf("admin: decode %s response: %w", request, err)
		}
	}
	return nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
