package admin

import (
	"fmt"
	"sort"
	"strings"

	"bsd6/internal/core"
)

// Crawler walks the admin plane from a seed node, following getPeers
// adjacency breadth-first and interrogating every node it reaches.
type Crawler struct {
	Net *Network
}

// NodeReport is one crawled node's row in the fleet report.
type NodeReport struct {
	Name         string              `json:"name"`
	Router       bool                `json:"router"`
	Peers        []string            `json:"peers"`
	Forwarded    uint64              `json:"forwarded"`
	FwdCacheHits uint64              `json:"fwdCacheHits"`
	Drops        map[string]uint64   `json:"drops,omitempty"`
	Limits       core.LimitsSnapshot `json:"limits"`
}

// FleetReport aggregates one crawl: every node's limits, drops and
// forwarding counters, with fleet-wide totals.  The crawl follows the
// *configured* adjacency (the management plane), so severed data
// links do not hide nodes — a node is Unreachable only if its admin
// endpoint itself cannot be dialed or answers garbage.
type FleetReport struct {
	Seed        string       `json:"seed"`
	Crawled     int          `json:"crawled"`
	Unreachable []string     `json:"unreachable,omitempty"`
	Nodes       []NodeReport `json:"nodes"`

	TotalForwarded    uint64 `json:"totalForwarded"`
	TotalFwdCacheHits uint64 `json:"totalFwdCacheHits"`
	// TotalDrops sums every node's typed drop-reason map.
	TotalDrops map[string]uint64 `json:"totalDrops"`
	// LimitDrops sums the discards induced by each governance
	// ceiling across the fleet, keyed by the limit's drop reason.
	LimitDrops map[string]uint64 `json:"limitDrops"`
	// PoolOutstanding is the process-wide mbuf leak gauge (bytes out
	// of the pool and not yet returned).  Every node reports the
	// same shared-pool value, so it appears once, not summed.
	PoolOutstanding int64 `json:"poolOutstanding"`
}

// Crawl walks the fleet from seed and aggregates what it finds.  It
// fails only when nothing at all could be crawled; partial fleets
// come back as a report with Unreachable entries.
func (c *Crawler) Crawl(seed string) (*FleetReport, error) {
	r := &FleetReport{
		Seed:       seed,
		TotalDrops: make(map[string]uint64),
		LimitDrops: make(map[string]uint64),
	}
	visited := map[string]bool{seed: true}
	queue := []string{seed}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		node, peers, err := c.interrogate(name)
		if err != nil {
			r.Unreachable = append(r.Unreachable, name)
			continue
		}
		r.Nodes = append(r.Nodes, node)
		r.TotalForwarded += node.Forwarded
		r.TotalFwdCacheHits += node.FwdCacheHits
		for reason, n := range node.Drops {
			r.TotalDrops[reason] += n
		}
		for _, l := range limitList(node.Limits) {
			if l.Drops > 0 {
				r.LimitDrops[l.Reason] += l.Drops
			}
		}
		r.PoolOutstanding = node.Limits.PoolOutstanding
		for _, p := range peers {
			if !visited[p] {
				visited[p] = true
				queue = append(queue, p)
			}
		}
	}
	r.Crawled = len(r.Nodes)
	if r.Crawled == 0 {
		return r, fmt.Errorf("admin: crawl from %q reached nothing", seed)
	}
	return r, nil
}

// interrogate queries one node: getSelf, getPeers, getSnapshot.
func (c *Crawler) interrogate(name string) (NodeReport, []string, error) {
	cl, err := Connect(c.Net, name)
	if err != nil {
		return NodeReport{}, nil, err
	}
	defer cl.Close()
	var self Self
	if err := cl.Do("getSelf", nil, &self); err != nil {
		return NodeReport{}, nil, err
	}
	var peers Peers
	if err := cl.Do("getPeers", nil, &peers); err != nil {
		return NodeReport{}, nil, err
	}
	var snap core.Snapshot
	if err := cl.Do("getSnapshot", nil, &snap); err != nil {
		return NodeReport{}, nil, err
	}
	node := NodeReport{
		Name: self.Name, Router: self.Router,
		Forwarded: self.Forwarded, FwdCacheHits: self.FwdCacheHits,
		Drops: snap.Reasons, Limits: snap.Limits,
	}
	names := make([]string, 0, len(peers.Peers))
	for _, p := range peers.Peers {
		node.Peers = append(node.Peers, p.Name)
		names = append(names, p.Name)
	}
	return node, names, nil
}

// limitList flattens a LimitsSnapshot for aggregation.
func limitList(l core.LimitsSnapshot) []core.LimitSnapshot {
	return []core.LimitSnapshot{
		l.Reasm6, l.Reasm4, l.NDCache, l.SynBacklog, l.TimeWait, l.MbufQueue,
	}
}

// Render formats the report as the operator-facing fleet summary: a
// totals header, the fleet-wide drop taxonomy, and one row per node.
func (r *FleetReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d nodes crawled from %s", r.Crawled, r.Seed)
	if len(r.Unreachable) > 0 {
		fmt.Fprintf(&b, " (%d unreachable: %s)", len(r.Unreachable), strings.Join(r.Unreachable, " "))
	}
	fmt.Fprintf(&b, "\nforwarded: %d transit packets (%d via held routes), pool-outstanding %dB\n",
		r.TotalForwarded, r.TotalFwdCacheHits, r.PoolOutstanding)
	b.WriteString("drops: " + renderCounts(r.TotalDrops) + "\n")
	if len(r.LimitDrops) > 0 {
		b.WriteString("limit-induced: " + renderCounts(r.LimitDrops) + "\n")
	}
	fmt.Fprintf(&b, "%-8s %-6s %5s %10s %10s  %s\n", "node", "role", "peers", "fwd", "drops", "hot-limit")
	for _, n := range r.Nodes {
		role := "host"
		if n.Router {
			role = "router"
		}
		var drops uint64
		for _, v := range n.Drops {
			drops += v
		}
		fmt.Fprintf(&b, "%-8s %-6s %5d %10d %10d  %s\n",
			n.Name, role, len(n.Peers), n.Forwarded, drops, hotLimit(n.Limits))
	}
	return b.String()
}

// hotLimit names the node's most loaded governance ceiling as
// "name cur/max(drops)", or "-" when everything is idle.
func hotLimit(l core.LimitsSnapshot) string {
	names := []string{"reasm6", "reasm4", "nd-cache", "syn-backlog", "time-wait", "mbuf-queue"}
	best, bestLoad := "", 0.0
	for i, s := range limitList(l) {
		if s.Max <= 0 || (s.Cur == 0 && s.Drops == 0) {
			continue
		}
		load := float64(s.Cur) / float64(s.Max)
		if s.Drops > 0 {
			load += 1 // a dropping limit always outranks a quiet one
		}
		if load > bestLoad {
			bestLoad = load
			best = fmt.Sprintf("%s %d/%d(%d)", names[i], s.Cur, s.Max, s.Drops)
		}
	}
	if best == "" {
		return "-"
	}
	return best
}

func renderCounts(m map[string]uint64) string {
	if len(m) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
