package admin

import (
	"bufio"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestAdminDocCoverage keeps docs/ADMIN.md and the implemented
// protocol in lockstep: every request the server answers must have a
// "### <name>" reference section, and every "### <camelCase>" heading
// in the requests part of the document must name an implemented
// request.  Adding a request without documenting it (or documenting
// vapor) fails here.
func TestAdminDocCoverage(t *testing.T) {
	f, err := os.Open("../../docs/ADMIN.md")
	if err != nil {
		t.Fatalf("protocol reference missing: %v", err)
	}
	defer f.Close()

	var documented []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, ok := strings.CutPrefix(sc.Text(), "### ")
		if !ok {
			continue
		}
		name = strings.TrimSpace(name)
		// Request sections are single camelCase words; prose headings
		// ("Request envelope", "Error cases", …) contain spaces.
		if name == "" || strings.ContainsAny(name, " \t") {
			continue
		}
		documented = append(documented, name)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(documented)
	if !reflect.DeepEqual(documented, RequestNames()) {
		t.Fatalf("docs/ADMIN.md documents %v\nserver implements   %v",
			documented, RequestNames())
	}
}
