package admin

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/netif"
)

func testStack(t *testing.T) *core.Stack {
	t.Helper()
	s := core.NewStack("a1", core.Options{NoTimers: true, NetisrWorkers: 1})
	t.Cleanup(s.Close)
	hub := netif.NewHub()
	ifp := s.AttachLink(hub, inet.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	s.ConfigureV6(ifp, inet.IP6{0x20, 0x01, 0x0d, 0xb8, 15: 1}, 64)
	return s
}

func testServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer(testStack(t), NodeInfo{
		Name: "a1", Router: true,
		Peers: []Peer{{Name: "b1", Link: 0, Addr: "2001:db8::2", MTU: 1500}},
	})
	n := NewNetwork()
	if err := n.Register(s); err != nil {
		t.Fatal(err)
	}
	cl, err := Connect(n, "a1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return s, cl
}

func TestListMatchesRequestNames(t *testing.T) {
	_, cl := testServer(t)
	var list RequestList
	if err := cl.Do("list", nil, &list); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(list.Requests, RequestNames()) {
		t.Fatalf("list = %v, want %v", list.Requests, RequestNames())
	}
	if !sort.StringsAreSorted(list.Requests) {
		t.Fatalf("request names not sorted: %v", list.Requests)
	}
}

func TestEveryRequestAnswers(t *testing.T) {
	_, cl := testServer(t)
	for _, name := range RequestNames() {
		var raw json.RawMessage
		if err := cl.Do(name, nil, &raw); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(raw) == 0 {
			t.Errorf("%s: empty response", name)
		}
	}
}

func TestGetSelfAndPeers(t *testing.T) {
	_, cl := testServer(t)
	var self Self
	if err := cl.Do("getSelf", nil, &self); err != nil {
		t.Fatal(err)
	}
	if self.Name != "a1" || !self.Router || self.Peers != 1 {
		t.Fatalf("getSelf = %+v", self)
	}
	var peers Peers
	if err := cl.Do("getPeers", nil, &peers); err != nil {
		t.Fatal(err)
	}
	if len(peers.Peers) != 1 || peers.Peers[0].Name != "b1" {
		t.Fatalf("getPeers = %+v", peers)
	}
}

func TestGetRoutes(t *testing.T) {
	_, cl := testServer(t)
	var routes Routes
	if err := cl.Do("getRoutes", routesArgs{Family: "inet6"}, &routes); err != nil {
		t.Fatal(err)
	}
	if routes.Count == 0 || routes.Count != len(routes.Routes) {
		t.Fatalf("getRoutes = %+v", routes)
	}
	found := false
	for _, r := range routes.Routes {
		if r.Dst == "2001:db8::/64" && r.Flags == "UCL" {
			found = true
		}
	}
	if !found {
		t.Fatalf("configured prefix missing from %+v", routes.Routes)
	}
	// Default family is inet6.
	var def Routes
	if err := cl.Do("getRoutes", nil, &def); err != nil {
		t.Fatal(err)
	}
	if def.Family != "inet6" || def.Count != routes.Count {
		t.Fatalf("default-family getRoutes = %+v", def)
	}
}

func TestErrorCases(t *testing.T) {
	_, cl := testServer(t)
	if err := cl.Do("noSuchRequest", nil, nil); err == nil {
		t.Fatal("unknown request did not error")
	}
	if err := cl.Do("", nil, nil); err == nil {
		t.Fatal("missing request field did not error")
	}
	if err := cl.Do("getRoutes", routesArgs{Family: "ipx"}, nil); err == nil {
		t.Fatal("bad family did not error")
	}
	// The connection survives protocol errors.
	if err := cl.Do("getSelf", nil, nil); err != nil {
		t.Fatalf("connection dead after error responses: %v", err)
	}
}

func TestMalformedJSON(t *testing.T) {
	s := NewServer(testStack(t), NodeInfo{Name: "a1"})
	n := NewNetwork()
	if err := n.Register(s); err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial("a1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{not json}\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "error" {
		t.Fatalf("malformed line answered %+v", resp)
	}
	// The server closes the connection after a framing error.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after framing error")
	}
}

func TestNetworkRegistry(t *testing.T) {
	n := NewNetwork()
	s := NewServer(testStack(t), NodeInfo{Name: "a1"})
	if err := n.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(s); err == nil {
		t.Fatal("duplicate registration allowed")
	}
	if _, err := n.Dial("ghost"); err == nil {
		t.Fatal("dial of unknown node succeeded")
	}
	if got := n.Names(); len(got) != 1 || got[0] != "a1" {
		t.Fatalf("Names = %v", got)
	}
}
