// Package admin is the per-stack operator endpoint and the fleet
// crawler built on it: each node serves its Snapshot() truth plus
// topology/neighbor information over a newline-delimited JSON
// request/response protocol (modeled on yggdrasil-go's admin socket),
// and a Crawler walks the network from any seed node, aggregating
// per-node limits, drops and leak gauges into one FleetReport.
//
// The transport is an in-memory listener (net.Pipe), so the admin
// plane is a management network alongside the simulated data plane:
// the crawler reaches every registered node even while data-plane
// links are partitioned — exactly what an operator's out-of-band
// console would see.
//
// The protocol contract lives in docs/ADMIN.md; an audit test keeps
// that document and RequestNames in lockstep.
package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"

	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/route"
)

// Request is the wire envelope a client sends: one JSON object per
// line, naming the request and carrying optional request-specific
// arguments.
type Request struct {
	Request   string          `json:"request"`
	Arguments json.RawMessage `json:"arguments,omitempty"`
}

// Response is the wire envelope a server answers with: status
// "success" carries the request-specific response object, status
// "error" carries the error string instead.
type Response struct {
	Status   string          `json:"status"` // "success" or "error"
	Request  string          `json:"request,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// Peer describes one neighbor on one link, as served by getPeers.
// Name is the neighbor's admin name (dialable on the same Network);
// Addr is its global address on the shared link, empty for an
// unnumbered autoconf host.
type Peer struct {
	Name string `json:"name"`
	Link int    `json:"link"`
	Addr string `json:"addr,omitempty"`
	MTU  int    `json:"mtu"`
}

// NodeInfo is the topology identity a Server serves alongside the
// stack state: the node's admin name, whether it forwards, and its
// static neighbor list.
type NodeInfo struct {
	Name   string
	Router bool
	Peers  []Peer
}

// Self is the getSelf response: the node's identity card plus its
// forwarding counters.
type Self struct {
	Name         string `json:"name"`
	Router       bool   `json:"router"`
	Peers        int    `json:"peers"`
	Forwarded    uint64 `json:"forwarded"`    // IPv6 + IPv4 transit packets
	FwdCacheHits uint64 `json:"fwdCacheHits"` // transit routed via the held-route shards
}

// Peers is the getPeers response.
type Peers struct {
	Peers []Peer `json:"peers"`
}

// Limits is the getLimits response: the stack's resource-governance
// surface (see core.LimitsSnapshot).
type Limits struct {
	Limits core.LimitsSnapshot `json:"limits"`
}

// DropReasons is the getDropReasons response: the typed drop-reason
// map — every induced discard in the stack, by taxonomy name.
type DropReasons struct {
	Drops map[string]uint64 `json:"drops"`
}

// RouteRow is one route in the getRoutes response.
type RouteRow struct {
	Dst     string `json:"dst"` // prefix/plen
	Gateway string `json:"gateway,omitempty"`
	Flags   string `json:"flags"` // netstat letters: U up, G gateway, H host, C cloning, L llinfo, S static, D dynamic, R reject
	IfName  string `json:"ifname"`
	MTU     int    `json:"mtu,omitempty"`
	Use     uint64 `json:"use"`
}

// Routes is the getRoutes response.
type Routes struct {
	Family string     `json:"family"`
	Count  int        `json:"count"`
	Routes []RouteRow `json:"routes"`
}

// RequestList is the list response: every request this server
// implements, sorted.
type RequestList struct {
	Requests []string `json:"requests"`
}

// requestNames is the protocol surface, sorted.  docs/ADMIN.md must
// document exactly this set (TestAdminDocCoverage enforces it).
var requestNames = []string{
	"getDropReasons",
	"getLimits",
	"getPeers",
	"getRoutes",
	"getSelf",
	"getSnapshot",
	"list",
}

// RequestNames returns every request the protocol implements, sorted.
func RequestNames() []string {
	return append([]string(nil), requestNames...)
}

// Server is one node's admin endpoint: it answers the protocol's
// requests from the stack's live state.  Safe for concurrent
// connections — every answer reads atomics or takes the stack's own
// locks.
type Server struct {
	stack *core.Stack
	info  NodeInfo
}

// NewServer builds the admin endpoint for stack with its topology
// identity.
func NewServer(stack *core.Stack, info NodeInfo) *Server {
	return &Server{stack: stack, info: info}
}

// Name returns the server's admin name.
func (s *Server) Name() string { return s.info.Name }

// Serve answers requests on conn until EOF or a protocol error.  One
// line in, one line out, in order.
func (s *Server) Serve(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				enc.Encode(Response{Status: "error", Error: "malformed request: " + err.Error()})
			}
			return
		}
		if err := enc.Encode(s.handle(req)); err != nil {
			return
		}
	}
}

// handle dispatches one request to its implementation.
func (s *Server) handle(req Request) Response {
	var (
		body any
		err  error
	)
	switch req.Request {
	case "list":
		body = RequestList{Requests: RequestNames()}
	case "getSelf":
		body = s.self()
	case "getPeers":
		body = Peers{Peers: append([]Peer{}, s.info.Peers...)}
	case "getSnapshot":
		body = s.stack.Snapshot()
	case "getLimits":
		body = Limits{Limits: s.stack.Snapshot().Limits}
	case "getDropReasons":
		body = DropReasons{Drops: s.stack.Drops.Reasons.Snapshot()}
	case "getRoutes":
		body, err = s.routes(req.Arguments)
	case "":
		err = fmt.Errorf("missing request field")
	default:
		err = fmt.Errorf("unknown request %q", req.Request)
	}
	if err != nil {
		return Response{Status: "error", Request: req.Request, Error: err.Error()}
	}
	raw, merr := json.Marshal(body)
	if merr != nil {
		return Response{Status: "error", Request: req.Request, Error: "encode: " + merr.Error()}
	}
	return Response{Status: "success", Request: req.Request, Response: raw}
}

func (s *Server) self() Self {
	return Self{
		Name:   s.info.Name,
		Router: s.info.Router,
		Peers:  len(s.info.Peers),
		Forwarded: s.stack.V6.Stats.Forwarded.Get() +
			s.stack.V4.Stats.Forwarded.Get(),
		FwdCacheHits: s.stack.V6.Stats.FwdCacheHits.Get() +
			s.stack.V4.Stats.FwdCacheHits.Get(),
	}
}

// routesArgs are getRoutes' arguments.
type routesArgs struct {
	Family string `json:"family"`
}

func (s *Server) routes(raw json.RawMessage) (Routes, error) {
	args := routesArgs{Family: "inet6"}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &args); err != nil {
			return Routes{}, fmt.Errorf("bad arguments: %v", err)
		}
	}
	var fam inet.Family
	switch args.Family {
	case "inet6":
		fam = inet.AFInet6
	case "inet":
		fam = inet.AFInet
	default:
		return Routes{}, fmt.Errorf("bad arguments: family must be \"inet\" or \"inet6\", got %q", args.Family)
	}
	out := Routes{Family: args.Family}
	s.stack.RT.Walk(fam, func(e *route.Entry) bool {
		row := RouteRow{
			Dst:    fmt.Sprintf("%s/%d", addrString(fam, e.Dst), e.Plen),
			Flags:  flagLetters(e.Flags),
			IfName: e.IfName,
			MTU:    e.MTU,
			Use:    atomic.LoadUint64(&e.Use), // cached sends add without the table lock
		}
		switch gw := e.Gateway.(type) {
		case inet.IP6:
			row.Gateway = gw.String()
		case inet.IP4:
			row.Gateway = gw.String()
		case inet.LinkAddr:
			row.Gateway = gw.String()
		}
		out.Routes = append(out.Routes, row)
		return true
	})
	out.Count = len(out.Routes)
	return out, nil
}

func addrString(f inet.Family, b []byte) string {
	if f == inet.AFInet6 {
		var a inet.IP6
		copy(a[:], b)
		return a.String()
	}
	var a inet.IP4
	copy(a[:], b)
	return a.String()
}

// flagLetters renders route flags with netstat's letters.
func flagLetters(f int) string {
	var b strings.Builder
	for _, fl := range []struct {
		bit int
		ch  byte
	}{
		{route.FlagUp, 'U'},
		{route.FlagGateway, 'G'},
		{route.FlagHost, 'H'},
		{route.FlagCloning, 'C'},
		{route.FlagLLInfo, 'L'},
		{route.FlagStatic, 'S'},
		{route.FlagDynamic, 'D'},
		{route.FlagReject, 'R'},
	} {
		if f&fl.bit != 0 {
			b.WriteByte(fl.ch)
		}
	}
	return b.String()
}
