package inet

import (
	"testing"
	"testing/quick"
)

func mustIP6(t *testing.T, s string) IP6 {
	t.Helper()
	a, err := ParseIP6(s)
	if err != nil {
		t.Fatalf("ParseIP6(%q): %v", s, err)
	}
	return a
}

func TestParseIP4(t *testing.T) {
	good := map[string]IP4{
		"0.0.0.0":         {},
		"127.0.0.1":       {127, 0, 0, 1},
		"255.255.255.255": {255, 255, 255, 255},
		"10.1.2.3":        {10, 1, 2, 3},
	}
	for s, want := range good {
		got, err := ParseIP4(s)
		if err != nil || got != want {
			t.Errorf("ParseIP4(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1..2.3", "a.b.c.d", "01.2.3.4", "1.2.3.4.", ".1.2.3.4", "-1.2.3.4"}
	for _, s := range bad {
		if _, err := ParseIP4(s); err == nil {
			t.Errorf("ParseIP4(%q) succeeded, want error", s)
		}
	}
}

func TestParseIP6(t *testing.T) {
	cases := map[string]string{ // input -> canonical re-formatting
		"::":                       "::",
		"::1":                      "::1",
		"fe80::1":                  "fe80::1",
		"FE80::800:DEAD:BEEF":      "fe80::800:dead:beef", // the paper's Figure 7 address
		"1:2:3:4:5:6:7:8":          "1:2:3:4:5:6:7:8",
		"1::8":                     "1::8",
		"1:0:0:2:0:0:0:8":          "1:0:0:2::8", // longest run wins
		"ff02::1":                  "ff02::1",
		"::ffff:10.1.2.3":          "::ffff:10.1.2.3",
		"64:ff9b::1.2.3.4":         "64:ff9b::102:304",
		"1:2:3:4:5:6:1.2.3.4":      "1:2:3:4:5:6:102:304",
		"0:0:0:0:0:0:0:0":          "::",
		"2001:db8:0:0:1:0:0:1":     "2001:db8::1:0:0:1",
		"fe80:0:0:0:200:ff:fe00:1": "fe80::200:ff:fe00:1",
	}
	for in, want := range cases {
		a, err := ParseIP6(in)
		if err != nil {
			t.Errorf("ParseIP6(%q): %v", in, err)
			continue
		}
		if got := a.String(); got != want {
			t.Errorf("ParseIP6(%q).String() = %q, want %q", in, got, want)
		}
	}
	bad := []string{"", ":", ":::", "1:2:3:4:5:6:7:8:9", "1:2:3:4:5:6:7", "g::1",
		"1::2::3", "1:2:3:4:5:6:7:8::", "::1:2:3:4:5:6:7:8", "12345::", "1.2.3.4::1",
		"1:", "1:2:3:4:5:6:1.2.3", "1:2:3:4:5:6:7:1.2.3.4", "fe80::1%eth0"}
	for _, s := range bad {
		if _, err := ParseIP6(s); err == nil {
			a, _ := ParseIP6(s)
			t.Errorf("ParseIP6(%q) succeeded (%v), want error", s, a)
		}
	}
}

// Property: formatting then reparsing any IPv6 address is the identity.
func TestQuickIP6RoundTrip(t *testing.T) {
	f := func(a IP6) bool {
		b, err := ParseIP6(a.String())
		return err == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIP4RoundTrip(t *testing.T) {
	f := func(a IP4) bool {
		b, err := ParseIP4(a.String())
		return err == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredicates(t *testing.T) {
	if !IP6Loopback.IsLoopback() || IP6Loopback.IsUnspecified() {
		t.Fatal("loopback predicates")
	}
	if !(IP6{}).IsUnspecified() {
		t.Fatal("unspecified")
	}
	ll := mustIP6(t, "fe80::1")
	if !ll.IsLinkLocal() || ll.IsMulticast() {
		t.Fatal("link-local predicates")
	}
	if !AllNodes.IsMulticast() || !AllNodes.IsLinkLocalMulticast() {
		t.Fatal("all-nodes predicates")
	}
	global := mustIP6(t, "2001:db8::1")
	if global.IsLinkLocal() || global.IsMulticast() || global.IsV4Mapped() {
		t.Fatal("global predicates")
	}
	if !(IP4{224, 0, 0, 1}).IsMulticast() || (IP4{223, 0, 0, 1}).IsMulticast() {
		t.Fatal("v4 multicast predicate")
	}
	if !(IP4{127, 0, 0, 1}).IsLoopback() {
		t.Fatal("v4 loopback")
	}
}

func TestV4Mapped(t *testing.T) {
	v4 := IP4{10, 9, 8, 7}
	m := V4Mapped(v4)
	if !m.IsV4Mapped() {
		t.Fatal("V4Mapped not recognized")
	}
	if got := m.String(); got != "::ffff:10.9.8.7" {
		t.Fatalf("mapped string = %q", got)
	}
	back, ok := m.MappedV4()
	if !ok || back != v4 {
		t.Fatalf("MappedV4 = %v, %v", back, ok)
	}
	if _, ok := mustIP6(t, "2001:db8::1").MappedV4(); ok {
		t.Fatal("non-mapped reported mapped")
	}
	// ::fffe:... (wrong marker) must not be mapped.
	var near IP6
	near[10], near[11] = 0xff, 0xfe
	if near.IsV4Mapped() {
		t.Fatal("wrong marker accepted as mapped")
	}
}

func TestSolicitedNode(t *testing.T) {
	a := mustIP6(t, "fe80::800:dead:beef")
	s := SolicitedNode(a)
	if got := s.String(); got != "ff02::1:ffad:beef" {
		t.Fatalf("solicited-node = %q", got)
	}
	if !s.IsMulticast() {
		t.Fatal("solicited-node must be multicast")
	}
	// Addresses differing only above the low 24 bits share a group.
	b := mustIP6(t, "2001:db8::1234:adbe:ef00")
	_ = b
	c := mustIP6(t, "2001:db8::99:dead:beef")
	if SolicitedNode(c) != s {
		t.Fatal("solicited-node must depend only on low 24 bits")
	}
}

func TestLinkLocalAndPrefix(t *testing.T) {
	mac := LinkAddr{0x08, 0x00, 0xde, 0xad, 0xbe, 0xef}
	tok := mac.Token()
	ll := LinkLocal(tok)
	if !ll.IsLinkLocal() {
		t.Fatal("LinkLocal not link-local")
	}
	if got := ll.String(); got != "fe80::a00:deff:fead:beef" {
		t.Fatalf("link-local = %q", got)
	}
	prefix := mustIP6(t, "2001:db8:1:2::")
	global := WithPrefix(prefix, 64, ll)
	if got := global.String(); got != "2001:db8:1:2:a00:deff:fead:beef" {
		t.Fatalf("autoconf global = %q", got)
	}
	if global.Token() != ll.Token() {
		t.Fatal("token must survive prefixing")
	}
	if !MatchPrefix(global, prefix, 64) {
		t.Fatal("MatchPrefix after WithPrefix")
	}
}

func TestWithPrefixPartialByte(t *testing.T) {
	prefix := mustIP6(t, "fc00::")
	a := mustIP6(t, "1ff::1")
	out := WithPrefix(prefix, 7, a)
	// Top 7 bits from fc00:: (1111110x), low bit of byte 0 from a (1).
	if out[0] != 0xfd || out[1] != 0xff || out[15] != 1 {
		t.Fatalf("WithPrefix(7) = %v", out.String())
	}
}

func TestMatchPrefix(t *testing.T) {
	a := mustIP6(t, "2001:db8::1")
	b := mustIP6(t, "2001:db8::2")
	c := mustIP6(t, "2001:db9::1")
	if !MatchPrefix(a, b, 64) || MatchPrefix(a, c, 32) {
		t.Fatal("MatchPrefix byte cases")
	}
	if !MatchPrefix(a, c, 30) { // db8 vs db9 differ in bit 31/32
		t.Fatal("MatchPrefix bit case (30)")
	}
	if !MatchPrefix(a, b, 0) || !MatchPrefix(a, a, 128) {
		t.Fatal("MatchPrefix extremes")
	}
	if MatchPrefix(a, c, 200) { // clamped to 128
		t.Fatal("MatchPrefix clamp")
	}
}

func TestMasks(t *testing.T) {
	if Mask4(24) != (IP4{255, 255, 255, 0}) || Mask4(0) != (IP4{}) || Mask4(32) != (IP4{255, 255, 255, 255}) {
		t.Fatal("Mask4")
	}
	if Mask4(20) != (IP4{255, 255, 240, 0}) {
		t.Fatal("Mask4(20)")
	}
	m := Mask6(64)
	for i := 0; i < 8; i++ {
		if m[i] != 0xff || m[i+8] != 0 {
			t.Fatal("Mask6(64)")
		}
	}
	if Mask6(10)[1] != 0xc0 {
		t.Fatal("Mask6(10)")
	}
}

func TestEthernetMulticast(t *testing.T) {
	s := SolicitedNode(mustIP6(t, "fe80::1:2"))
	mac := EthernetMulticast(s)
	if mac[0] != 0x33 || mac[1] != 0x33 {
		t.Fatal("33:33 prefix")
	}
	if mac[2] != s[12] || mac[5] != s[15] {
		t.Fatal("low 32 bits")
	}
	m4 := EthernetMulticast4(IP4{224, 129, 1, 2})
	if m4 != (LinkAddr{0x01, 0x00, 0x5e, 0x01, 1, 2}) {
		t.Fatalf("v4 multicast mac = %v", m4)
	}
}

func TestAddr2Ascii(t *testing.T) {
	s, err := Addr2Ascii(AFInet, IP4{1, 2, 3, 4})
	if err != nil || s != "1.2.3.4" {
		t.Fatalf("Addr2Ascii v4: %q %v", s, err)
	}
	s, err = Addr2Ascii(AFInet6, mustIP6(t, "fe80::1"))
	if err != nil || s != "fe80::1" {
		t.Fatalf("Addr2Ascii v6: %q %v", s, err)
	}
	if _, err := Addr2Ascii(AFInet, mustIP6(t, "::1")); err == nil {
		t.Fatal("family mismatch must error")
	}
	if _, err := Addr2Ascii(AFUnspec, IP4{}); err == nil {
		t.Fatal("unknown family must error")
	}
}

func TestAscii2Addr(t *testing.T) {
	a, err := Ascii2Addr(AFInet6, "FE80::800:dead:beef")
	if err != nil {
		t.Fatal(err)
	}
	if a.(IP6).String() != "fe80::800:dead:beef" {
		t.Fatalf("ascii2addr = %v", a)
	}
	if _, err := Ascii2Addr(AFInet, "1.2.3.4.5"); err == nil {
		t.Fatal("bad v4 must error")
	}
	if _, err := Ascii2Addr(AFUnspec, "x"); err == nil {
		t.Fatal("unknown family must error")
	}
}

func TestHostTable(t *testing.T) {
	h := NewHostTable()
	if err := h.Add("dual", IP4{10, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("dual", mustIP6(t, "2001:db8::1")); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("v4only", IP4{10, 0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("bad", "nope"); err == nil {
		t.Fatal("Add of non-address must error")
	}

	a, err := h.Hostname2Addr(AFInet6, "dual")
	if err != nil || a.(IP6).String() != "2001:db8::1" {
		t.Fatalf("v6 lookup: %v %v", a, err)
	}
	a, err = h.Hostname2Addr(AFInet, "dual")
	if err != nil || a.(IP4) != (IP4{10, 0, 0, 1}) {
		t.Fatalf("v4 lookup: %v %v", a, err)
	}
	// v6 lookup of a v4-only host returns a mapped address (transition).
	a, err = h.Hostname2Addr(AFInet6, "v4only")
	if err != nil || !a.(IP6).IsV4Mapped() {
		t.Fatalf("mapped fallback: %v %v", a, err)
	}
	// Literal addresses resolve without table entries.
	a, err = h.Hostname2Addr(AFInet6, "fe80::7")
	if err != nil || a.(IP6).String() != "fe80::7" {
		t.Fatalf("literal: %v %v", a, err)
	}
	if _, err := h.Hostname2Addr(AFInet6, "missing"); err != ErrHostNotFound {
		t.Fatalf("missing host: %v", err)
	}

	n, err := h.Addr2Hostname(mustIP6(t, "2001:db8::1"))
	if err != nil || n != "dual" {
		t.Fatalf("reverse v6: %q %v", n, err)
	}
	n, err = h.Addr2Hostname(IP4{10, 0, 0, 2})
	if err != nil || n != "v4only" {
		t.Fatalf("reverse v4: %q %v", n, err)
	}
	// Reverse of a mapped address finds the v4 record.
	n, err = h.Addr2Hostname(V4Mapped(IP4{10, 0, 0, 2}))
	if err != nil || n != "v4only" {
		t.Fatalf("reverse mapped: %q %v", n, err)
	}
	if _, err := h.Addr2Hostname(IP4{9, 9, 9, 9}); err != ErrHostNotFound {
		t.Fatalf("reverse missing: %v", err)
	}
}

func TestFamilyString(t *testing.T) {
	if AFInet.String() != "inet" || AFInet6.String() != "inet6" || AFUnspec.String() != "af0" {
		t.Fatal("Family.String")
	}
}
