package inet

import (
	"bytes"
	"testing"
	"testing/quick"
)

// The wide-word engine (Sum, SumCopy) is differentially tested against
// sumSlow, the original byte-pair loop kept as the oracle. The oracle
// accumulates in a bare uint32, which is exact for anything up to the
// 64 KB maximum datagram but wraps beyond it, so inputs are capped and
// initial accumulators masked to the range real call sites produce
// (pseudo-header sums are a few times 0xffff).

const fuzzMaxLen = 64 << 10

// FuzzChecksum feeds arbitrary buffers, start offsets and initial
// accumulators through Sum and SumCopy and cross-checks them against
// sumSlow. The offset shifts the slice against its backing array so
// the 8-byte loads run at every alignment; odd lengths exercise the
// trailing-byte padding.
func FuzzChecksum(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint32(0))
	f.Add([]byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}, uint8(0), uint32(0))
	f.Add([]byte{0xab}, uint8(1), uint32(0xffff))
	f.Add(bytes.Repeat([]byte{0xff}, 97), uint8(3), uint32(1))
	f.Add(bytes.Repeat([]byte{0x7f, 0x01}, 40), uint8(7), uint32(0xfffe))
	f.Fuzz(func(t *testing.T, data []byte, off uint8, initial uint32) {
		if len(data) > fuzzMaxLen {
			data = data[:fuzzMaxLen]
		}
		initial &= 0xffffff // keep the uint32 oracle exact
		b := data[int(off)%(len(data)+1):]

		want := Fold(sumSlow(initial, b))
		if got := Fold(Sum(initial, b)); got != want {
			t.Fatalf("Sum(%#x, %d bytes @%d) folds to %#x, oracle %#x",
				initial, len(b), int(off)%(len(data)+1), got, want)
		}

		dst := make([]byte, len(b))
		if got := Fold(SumCopy(initial, dst, b)); got != want {
			t.Fatalf("SumCopy sum folds to %#x, oracle %#x", got, want)
		}
		if !bytes.Equal(dst, b) {
			t.Fatal("SumCopy did not copy the source verbatim")
		}
	})
}

// TestSumMatchesSlowSweep pins the engine against the oracle for every
// length 0..129 at every offset 0..8 — all alignments of the unrolled
// loop, the 8/4/2/1-byte tails, and odd trailing bytes — plus one
// jumbo buffer that crosses many unrolled iterations.
func TestSumMatchesSlowSweep(t *testing.T) {
	raw := make([]byte, 160)
	for i := range raw {
		raw[i] = byte(i*37 + 11)
	}
	for off := 0; off <= 8; off++ {
		for n := 0; off+n <= len(raw) && n <= 129; n++ {
			b := raw[off : off+n]
			if got, want := Fold(Sum(0x1234, b)), Fold(sumSlow(0x1234, b)); got != want {
				t.Fatalf("off=%d len=%d: Sum %#x, slow %#x", off, n, got, want)
			}
		}
	}
	jumbo := make([]byte, 9001)
	for i := range jumbo {
		jumbo[i] = byte(i ^ i>>5)
	}
	if got, want := Fold(Sum(0, jumbo)), Fold(sumSlow(0, jumbo)); got != want {
		t.Fatalf("jumbo: Sum %#x, slow %#x", got, want)
	}
}

// TestSumCopySweep checks the fused copy-with-checksum across the same
// length/offset lattice: the copy must be verbatim and the sum must
// match the oracle, including when source and destination alignments
// differ.
func TestSumCopySweep(t *testing.T) {
	raw := make([]byte, 160)
	for i := range raw {
		raw[i] = byte(i*73 + 5)
	}
	for off := 0; off <= 8; off++ {
		for n := 0; off+n <= len(raw) && n <= 129; n++ {
			src := raw[off : off+n]
			dst := make([]byte, n+3)
			got := Fold(SumCopy(7, dst[3:], src)) // destination misaligned vs source
			if want := Fold(sumSlow(7, src)); got != want {
				t.Fatalf("off=%d len=%d: SumCopy %#x, slow %#x", off, n, got, want)
			}
			if !bytes.Equal(dst[3:], src) {
				t.Fatalf("off=%d len=%d: copy mismatch", off, n)
			}
		}
	}
}

// TestQuickIncrementalUpdate is the RFC 1624 property: after a 16- or
// 32-bit field rewrite, the incrementally updated checksum still
// verifies — re-summing the whole packet with the patched checksum in
// place folds to zero, the receiver-side invariant. Byte-identity with
// a full recompute additionally holds whenever neither representation
// hits the degenerate 0xffff form, which the TCP ACK-template test
// pins at its call site (a nonzero pseudo-header sum excludes it).
func TestQuickIncrementalUpdate(t *testing.T) {
	f := func(data []byte, pos uint8, to16 uint16, to32 uint32) bool {
		// Build a packet with its checksum at [0:2].
		pkt := append([]byte{0, 0}, data...)
		if len(pkt)%2 != 0 {
			pkt = append(pkt, 0)
		}
		ck := Checksum(pkt)
		pkt[0], pkt[1] = byte(ck>>8), byte(ck)

		// 16-bit rewrite at an even offset past the checksum.
		if len(pkt) >= 4 {
			p := 2 + 2*(int(pos)%((len(pkt)-2)/2))
			from := uint16(pkt[p])<<8 | uint16(pkt[p+1])
			pkt[p], pkt[p+1] = byte(to16>>8), byte(to16)
			ck = UpdateChecksum16(ck, from, to16)
			pkt[0], pkt[1] = byte(ck>>8), byte(ck)
			if Fold(Sum(0, pkt)) != 0 {
				return false
			}
		}
		// 32-bit rewrite likewise.
		if len(pkt) >= 6 {
			p := 2 + 2*(int(pos)%((len(pkt)-4)/2))
			from := uint32(pkt[p])<<24 | uint32(pkt[p+1])<<16 | uint32(pkt[p+2])<<8 | uint32(pkt[p+3])
			pkt[p], pkt[p+1], pkt[p+2], pkt[p+3] = byte(to32>>24), byte(to32>>16), byte(to32>>8), byte(to32)
			ck = UpdateChecksum32(ck, from, to32)
			pkt[0], pkt[1] = byte(ck>>8), byte(ck)
			if Fold(Sum(0, pkt)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateChecksumMatchesRecompute pins byte-identity for the header
// shapes the incremental path actually rewrites: an IPv4 forwarder's
// TTL decrement and a TCP pure-ACK's sequence/ack/window patch. Both
// headers carry a nonzero invariant sum (version byte, protocol
// number), which keeps every representative out of the degenerate
// 0xffff class, so incremental and full recompute agree exactly.
func TestUpdateChecksumMatchesRecompute(t *testing.T) {
	// IPv4 header, TTL 64 -> 63 at byte 8 (shares a column with the
	// protocol byte).
	hdr := []byte{0x45, 0, 0, 0x54, 0x12, 0x34, 0x40, 0, 64, 6, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2}
	ck := Checksum(hdr)
	hdr[10], hdr[11] = byte(ck>>8), byte(ck)
	for ttl := 64; ttl > 1; ttl-- {
		from := uint16(hdr[8])<<8 | uint16(hdr[9])
		hdr[8] = byte(ttl - 1)
		to := uint16(hdr[8])<<8 | uint16(hdr[9])
		ck = UpdateChecksum16(ck, from, to)
		hdr[10], hdr[11] = 0, 0
		if full := Checksum(hdr); full != ck {
			t.Fatalf("ttl %d: incremental %#x, recompute %#x", ttl-1, ck, full)
		}
		hdr[10], hdr[11] = byte(ck>>8), byte(ck)
	}

	// Chained 32-bit updates over a TCP-like header with a pseudo-sum.
	pseudo := uint32(0x1abcd)
	tcp := make([]byte, 20)
	tcp[13] = 0x10 // ACK
	ck = Fold(Sum(pseudo, tcp))
	tcp[16], tcp[17] = byte(ck>>8), byte(ck)
	for i := uint32(1); i < 200; i++ {
		seq, ackn := i*1461, i*977
		from := uint32(tcp[4])<<24 | uint32(tcp[5])<<16 | uint32(tcp[6])<<8 | uint32(tcp[7])
		tcp[4], tcp[5], tcp[6], tcp[7] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
		ck = UpdateChecksum32(ck, from, seq)
		from = uint32(tcp[8])<<24 | uint32(tcp[9])<<16 | uint32(tcp[10])<<8 | uint32(tcp[11])
		tcp[8], tcp[9], tcp[10], tcp[11] = byte(ackn>>24), byte(ackn>>16), byte(ackn>>8), byte(ackn)
		ck = UpdateChecksum32(ck, from, ackn)
		tcp[16], tcp[17] = 0, 0
		if full := Fold(Sum(pseudo, tcp)); full != ck {
			t.Fatalf("step %d: incremental %#x, recompute %#x", i, ck, full)
		}
		tcp[16], tcp[17] = byte(ck>>8), byte(ck)
	}
}
