// Package inet provides the address types and address library functions
// shared by every layer of the stack.
//
// The paper (§6.3) introduces four library functions — addr2ascii,
// ascii2addr, hostname2addr, and addr2hostname — that supersede
// inet_ntoa/inet_aton/gethostbyname/gethostbyaddr and work identically
// for IPv4 and IPv6.  This package implements those functions over its
// own address types (no use of the net package: the point of the
// reproduction is building the stack from scratch).
//
// It also implements the ones-complement internet checksum, including
// the IPv6 pseudo-header that ICMPv6, TCP and UDP over IPv6 must
// include in their checksum computation (§4, §5.2).
package inet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Address families, mirroring BSD's AF_* constants.
type Family int

// The supported address families.
const (
	AFUnspec Family = 0
	AFInet   Family = 2  // IPv4
	AFInet6  Family = 26 // IPv6 (4.4 BSD value differed; the number is arbitrary)
)

// String names the family as netstat prints it ("inet", "inet6").
func (f Family) String() string {
	switch f {
	case AFInet:
		return "inet"
	case AFInet6:
		return "inet6"
	default:
		return fmt.Sprintf("af%d", int(f))
	}
}

// IP4 is a 32-bit IPv4 address in wire (big-endian) order.
type IP4 [4]byte

// IP6 is a 128-bit IPv6 address in wire order.
type IP6 [16]byte

// Well-known IPv6 addresses and prefixes.
var (
	IP6Unspecified = IP6{}
	IP6Loopback    = IP6{15: 1}
	// AllNodes is ff02::1, the all-nodes link-local multicast group.
	AllNodes = IP6{0: 0xff, 1: 0x02, 15: 0x01}
	// AllRouters is ff02::2, the all-routers link-local multicast group.
	AllRouters = IP6{0: 0xff, 1: 0x02, 15: 0x02}
)

// IsUnspecified reports whether a is 0.0.0.0.
func (a IP4) IsUnspecified() bool { return a == IP4{} }

// IsLoopback reports whether a is in 127.0.0.0/8.
func (a IP4) IsLoopback() bool { return a[0] == 127 }

// IsMulticast reports whether a is in 224.0.0.0/4 (class D).
func (a IP4) IsMulticast() bool { return a[0] >= 224 && a[0] < 240 }

// IsBroadcast reports whether a is the limited broadcast address.
func (a IP4) IsBroadcast() bool { return a == IP4{255, 255, 255, 255} }

// IsUnspecified reports whether a is :: (the unspecified address).
func (a IP6) IsUnspecified() bool { return a == IP6{} }

// IsLoopback reports whether a is ::1.
func (a IP6) IsLoopback() bool { return a == IP6Loopback }

// IsMulticast reports whether a is in ff00::/8.
func (a IP6) IsMulticast() bool { return a[0] == 0xff }

// IsLinkLocal reports whether a is in fe80::/10, the prefix placed on
// every interface before any other address (§4.2.1).
func (a IP6) IsLinkLocal() bool { return a[0] == 0xfe && a[1]&0xc0 == 0x80 }

// IsLinkLocalMulticast reports whether a is in ff02::/16.
func (a IP6) IsLinkLocalMulticast() bool { return a[0] == 0xff && a[1]&0x0f == 0x02 }

// IsV4Mapped reports whether a is an IPv4-mapped IPv6 address
// (::ffff:a.b.c.d), the transition-spec form (§5.1) that lets a single
// PF_INET6 protocol control block denote an IPv4 peer.
func (a IP6) IsV4Mapped() bool {
	for i := 0; i < 10; i++ {
		if a[i] != 0 {
			return false
		}
	}
	return a[10] == 0xff && a[11] == 0xff
}

// V4Mapped returns the IPv4-mapped IPv6 address for v4.
func V4Mapped(v4 IP4) IP6 {
	var a IP6
	a[10], a[11] = 0xff, 0xff
	copy(a[12:], v4[:])
	return a
}

// MappedV4 extracts the IPv4 address from an IPv4-mapped address.
// ok is false if a is not IPv4-mapped.
func (a IP6) MappedV4() (v4 IP4, ok bool) {
	if !a.IsV4Mapped() {
		return IP4{}, false
	}
	copy(v4[:], a[12:])
	return v4, true
}

// SolicitedNode returns the solicited-node multicast address for a:
// the special prefix ff02::1:ff00:0/104 prepended to the low 24 bits of
// the address.  (The paper describes prepending ff02::1: to the low 32
// bits per the September-1995 ND draft; the final RFC settled on 24
// bits with ff02::1:ff00:0/104, which is what we implement — every node
// joins this group for each of its own addresses, §4.3.)
func SolicitedNode(a IP6) IP6 {
	s := IP6{0: 0xff, 1: 0x02, 11: 0x01, 12: 0xff}
	s[13], s[14], s[15] = a[13], a[14], a[15]
	return s
}

// LinkLocal forms the fe80:: link-local address from an interface token
// (§4.2.1: "a link-local prefix fe80:: in front of a token, usually the
// interface's MAC address").
func LinkLocal(token [8]byte) IP6 {
	a := IP6{0: 0xfe, 1: 0x80}
	copy(a[8:], token[:])
	return a
}

// WithPrefix replaces the top plen bits of a with those of prefix,
// forming (for plen=64) the "advertised prefix + token" address of
// stateless autoconfiguration (§4.2.2).
func WithPrefix(prefix IP6, plen int, a IP6) IP6 {
	out := a
	for i := 0; i < 16; i++ {
		bits := plen - i*8
		if bits <= 0 {
			break
		}
		if bits >= 8 {
			out[i] = prefix[i]
			continue
		}
		mask := byte(0xff << (8 - bits))
		out[i] = prefix[i]&mask | a[i]&^mask
	}
	return out
}

// Token returns the low 64 bits of the address — the interface token
// used by stateless autoconfiguration.
func (a IP6) Token() [8]byte {
	var t [8]byte
	copy(t[:], a[8:])
	return t
}

// MatchPrefix reports whether a and b agree in their top plen bits.
func MatchPrefix(a, b IP6, plen int) bool {
	if plen < 0 {
		plen = 0
	}
	if plen > 128 {
		plen = 128
	}
	full := plen / 8
	for i := 0; i < full; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	if rem := plen % 8; rem != 0 {
		mask := byte(0xff << (8 - rem))
		if a[full]&mask != b[full]&mask {
			return false
		}
	}
	return true
}

// Mask4 returns an IPv4 netmask of the given prefix length.
func Mask4(plen int) IP4 {
	var m IP4
	for i := range m {
		bits := plen - i*8
		switch {
		case bits >= 8:
			m[i] = 0xff
		case bits > 0:
			m[i] = byte(0xff << (8 - bits))
		}
	}
	return m
}

// Mask6 returns an IPv6 netmask of the given prefix length.
func Mask6(plen int) IP6 {
	var m IP6
	for i := range m {
		bits := plen - i*8
		switch {
		case bits >= 8:
			m[i] = 0xff
		case bits > 0:
			m[i] = byte(0xff << (8 - bits))
		}
	}
	return m
}

// LinkAddr is a 48-bit IEEE-802 link-layer (MAC) address, the usual
// interface token source.
type LinkAddr [6]byte

// Token expands a MAC address into a 64-bit interface token.  The NRL
// implementation predated EUI-64; we use the EUI-64 expansion
// (ff:fe insertion, universal/local bit flip) so that tokens formed
// from distinct MACs remain distinct.
func (l LinkAddr) Token() [8]byte {
	return [8]byte{l[0] ^ 0x02, l[1], l[2], 0xff, 0xfe, l[3], l[4], l[5]}
}

// String formats the address in the usual colon-separated hex form.
func (l LinkAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", l[0], l[1], l[2], l[3], l[4], l[5])
}

// EthernetMulticast maps an IPv6 multicast address to the Ethernet
// multicast address 33:33:xx:xx:xx:xx carrying its low 32 bits.
func EthernetMulticast(a IP6) LinkAddr {
	return LinkAddr{0x33, 0x33, a[12], a[13], a[14], a[15]}
}

// EthernetMulticast4 maps an IPv4 multicast address to 01:00:5e + low 23 bits.
func EthernetMulticast4(a IP4) LinkAddr {
	return LinkAddr{0x01, 0x00, 0x5e, a[1] & 0x7f, a[2], a[3]}
}

//
// Address formatting and parsing: the addr2ascii / ascii2addr pair.
//

// Addr2Ascii formats an address of the given family.  It is the
// version-independent replacement for inet_ntoa (§6.3).
func Addr2Ascii(family Family, addr any) (string, error) {
	switch family {
	case AFInet:
		a, ok := addr.(IP4)
		if !ok {
			return "", errors.New("addr2ascii: AF_INET wants an IP4")
		}
		return a.String(), nil
	case AFInet6:
		a, ok := addr.(IP6)
		if !ok {
			return "", errors.New("addr2ascii: AF_INET6 wants an IP6")
		}
		return a.String(), nil
	default:
		return "", fmt.Errorf("addr2ascii: unsupported family %v", family)
	}
}

// String formats an IPv4 address in dotted-quad form.
func (a IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// String formats an IPv6 address in canonical RFC 5952 style:
// lower-case hex, longest run of zero groups (length >= 2) compressed,
// IPv4-mapped addresses shown with a dotted-quad suffix.
func (a IP6) String() string {
	if a.IsV4Mapped() {
		v4, _ := a.MappedV4()
		return "::ffff:" + v4.String()
	}
	var g [8]uint16
	for i := range g {
		g[i] = uint16(a[2*i])<<8 | uint16(a[2*i+1])
	}
	// Longest zero run.
	best, bestLen := -1, 1
	for i := 0; i < 8; {
		if g[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && g[j] == 0 {
			j++
		}
		if j-i > bestLen {
			best, bestLen = i, j-i
		}
		i = j
	}
	var b strings.Builder
	for i := 0; i < 8; i++ {
		if i == best {
			b.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && !(best >= 0 && i == best+bestLen) {
			b.WriteByte(':')
		}
		fmt.Fprintf(&b, "%x", g[i])
	}
	s := b.String()
	if s == "" {
		return "::"
	}
	return s
}

// Ascii2Addr parses a textual address of the given family, the
// version-independent replacement for inet_aton (§6.3).
func Ascii2Addr(family Family, s string) (any, error) {
	switch family {
	case AFInet:
		return ParseIP4(s)
	case AFInet6:
		return ParseIP6(s)
	default:
		return nil, fmt.Errorf("ascii2addr: unsupported family %v", family)
	}
}

// ParseIP4 parses a dotted-quad IPv4 address.
func ParseIP4(s string) (IP4, error) {
	var a IP4
	part := 0
	val, digits := 0, 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if digits == 0 || part > 3 {
				return IP4{}, fmt.Errorf("inet: bad IPv4 address %q", s)
			}
			a[part] = byte(val)
			part++
			val, digits = 0, 0
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return IP4{}, fmt.Errorf("inet: bad IPv4 address %q", s)
		}
		if digits > 0 && val == 0 {
			return IP4{}, fmt.Errorf("inet: leading zero in IPv4 address %q", s)
		}
		val = val*10 + int(c-'0')
		digits++
		if val > 255 {
			return IP4{}, fmt.Errorf("inet: IPv4 octet out of range in %q", s)
		}
	}
	if part != 4 {
		return IP4{}, fmt.Errorf("inet: bad IPv4 address %q", s)
	}
	return a, nil
}

// ParseIP6 parses an IPv6 address in RFC-4291 text form, including "::"
// compression and an optional trailing dotted-quad.
func ParseIP6(s string) (IP6, error) {
	var a IP6
	orig := s
	fail := func() (IP6, error) { return IP6{}, fmt.Errorf("inet: bad IPv6 address %q", orig) }

	ellipsis := -1 // byte index into a where :: was seen
	i := 0         // next byte of a to fill

	if strings.HasPrefix(s, "::") {
		ellipsis = 0
		s = s[2:]
		if s == "" {
			return a, nil
		}
	} else if strings.HasPrefix(s, ":") {
		return fail()
	}

	for i < 16 {
		// A trailing dotted-quad consumes the final 4 bytes.
		if i <= 12 && strings.Contains(s, ".") && !strings.Contains(s, ":") {
			v4, err := ParseIP4(s)
			if err != nil {
				return fail()
			}
			copy(a[i:], v4[:])
			i += 4
			s = ""
			break
		}
		// Hex group.
		j := 0
		val := 0
		for j < len(s) && j < 4 {
			c := s[j]
			var d int
			switch {
			case c >= '0' && c <= '9':
				d = int(c - '0')
			case c >= 'a' && c <= 'f':
				d = int(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = int(c-'A') + 10
			default:
				goto doneGroup
			}
			val = val<<4 | d
			j++
		}
	doneGroup:
		if j == 0 {
			return fail()
		}
		a[i] = byte(val >> 8)
		a[i+1] = byte(val)
		i += 2
		s = s[j:]
		if s == "" {
			break
		}
		if s[0] == '.' {
			return fail() // dot may only start a group
		}
		if s[0] != ':' {
			return fail()
		}
		s = s[1:]
		if s == "" {
			return fail() // trailing single colon
		}
		if s[0] == ':' {
			if ellipsis >= 0 {
				return fail() // second ::
			}
			ellipsis = i
			s = s[1:]
			if s == "" {
				break
			}
		}
	}
	if s != "" {
		return fail()
	}
	if i < 16 {
		if ellipsis < 0 {
			return fail()
		}
		n := 16 - i // zeros to insert
		copy(a[ellipsis+n:], a[ellipsis:i])
		for k := ellipsis; k < ellipsis+n; k++ {
			a[k] = 0
		}
	} else if ellipsis >= 0 {
		// All 16 bytes were filled by explicit groups, so the "::"
		// expanded to zero groups, which RFC 4291 forbids.
		return fail()
	}
	return a, nil
}

//
// Host name resolution: hostname2addr / addr2hostname over an
// in-memory hosts table (the paper's functions consult the resolver;
// the table substitutes for DNS in this self-contained reproduction).
//

// HostTable maps names to addresses, like /etc/hosts.
type HostTable struct {
	mu    sync.RWMutex
	byN4  map[string]IP4
	byN6  map[string]IP6
	byA4  map[IP4]string
	byA6  map[IP6]string
	order map[string]Family // family of first-registered record per name
}

// NewHostTable returns an empty hosts table.
func NewHostTable() *HostTable {
	return &HostTable{
		byN4:  make(map[string]IP4),
		byN6:  make(map[string]IP6),
		byA4:  make(map[IP4]string),
		byA6:  make(map[IP6]string),
		order: make(map[string]Family),
	}
}

// Add registers a name/address pair. addr must be IP4 or IP6.
func (h *HostTable) Add(name string, addr any) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch a := addr.(type) {
	case IP4:
		h.byN4[name] = a
		h.byA4[a] = name
	case IP6:
		h.byN6[name] = a
		h.byA6[a] = name
	default:
		return fmt.Errorf("inet: HostTable.Add: unsupported address type %T", addr)
	}
	if _, ok := h.order[name]; !ok {
		if _, is4 := addr.(IP4); is4 {
			h.order[name] = AFInet
		} else {
			h.order[name] = AFInet6
		}
	}
	return nil
}

// ErrHostNotFound is returned when resolution fails.
var ErrHostNotFound = errors.New("inet: host not found")

// Hostname2Addr resolves a host name (or textual address) for a family.
// Like the paper's hostname2addr, AFInet6 resolution prefers an IPv6
// record but falls back to the host's IPv4 record as an IPv4-mapped
// address, so applications can transparently reach IPv4-only peers.
func (h *HostTable) Hostname2Addr(family Family, name string) (any, error) {
	if addr, err := Ascii2Addr(family, name); err == nil {
		return addr, nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	switch family {
	case AFInet:
		if a, ok := h.byN4[name]; ok {
			return a, nil
		}
	case AFInet6:
		if a, ok := h.byN6[name]; ok {
			return a, nil
		}
		if a, ok := h.byN4[name]; ok {
			return V4Mapped(a), nil
		}
	}
	return nil, ErrHostNotFound
}

// Addr2Hostname resolves an address back to a name.
func (h *HostTable) Addr2Hostname(addr any) (string, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	switch a := addr.(type) {
	case IP4:
		if n, ok := h.byA4[a]; ok {
			return n, nil
		}
	case IP6:
		if n, ok := h.byA6[a]; ok {
			return n, nil
		}
		if v4, ok := a.MappedV4(); ok {
			if n, ok := h.byA4[v4]; ok {
				return n, nil
			}
		}
	}
	return "", ErrHostNotFound
}
