package inet

import (
	"encoding/binary"
	"math/bits"
)

// The ones-complement internet checksum (RFC 1071) and its
// pseudo-headers.  The paper leans on the checksum in three places:
// IPv4 keeps a header checksum that IPv6 drops (§2.1); ICMPv6 newly
// includes a pseudo-header in its checksum (§4); and the UDP checksum
// becomes mandatory over IPv6 because nothing else protects the
// addresses (§5.2).
//
// The engine sums eight bytes per load with the carries deferred to a
// final fold: a big-endian 64-bit word is two 32-bit halves, each of
// which is two of the checksum's 16-bit columns, and because the
// ones-complement sum only cares about the total modulo 0xffff —
// 2^16 ≡ 1, so 2^32 ≡ 1 and 2^48 ≡ 1 — the halves (and later the
// folds) can be added in plain binary and reduced once at the end.
// A 64-bit accumulator absorbs ~2^29 such words before it could
// wrap, far beyond the 64 KB maximum datagram.

// Sum computes the unfolded 32-bit ones-complement sum of b, starting
// from an initial accumulator. Use Fold to produce the 16-bit checksum.
// An odd-length b contributes its last byte as the high half of a
// final padded word, so partial sums may only be chained at even
// offsets (as with RFC 1071 itself).
func Sum(initial uint32, b []byte) uint32 {
	sum := uint64(initial)
	// Unrolled main loop: 32 bytes per iteration into four independent
	// accumulators, so the adds pipeline instead of serializing on one
	// register.  Whole 64-bit words are added with the carry-out caught
	// explicitly: 2^64 = (2^16)^4 ≡ 1 (mod 2^16-1), so a carry off the
	// top re-enters the ones-complement sum as +1.
	if len(b) >= 32 {
		var s0, s1, s2, s3, carries uint64
		for len(b) >= 32 {
			var c0, c1, c2, c3 uint64
			s0, c0 = bits.Add64(s0, binary.BigEndian.Uint64(b), 0)
			s1, c1 = bits.Add64(s1, binary.BigEndian.Uint64(b[8:16]), 0)
			s2, c2 = bits.Add64(s2, binary.BigEndian.Uint64(b[16:24]), 0)
			s3, c3 = bits.Add64(s3, binary.BigEndian.Uint64(b[24:32]), 0)
			carries += c0 + c1 + c2 + c3
			b = b[32:]
		}
		// Halve each lane (≤2^33 after the split) and merge; the total
		// stays well under 2^36, exact in the deferred-carry form.
		sum += carries
		sum += s0>>32 + s0&0xffffffff
		sum += s1>>32 + s1&0xffffffff
		sum += s2>>32 + s2&0xffffffff
		sum += s3>>32 + s3&0xffffffff
	}
	for len(b) >= 8 {
		w := binary.BigEndian.Uint64(b)
		sum += w>>32 + w&0xffffffff
		b = b[8:]
	}
	if len(b) >= 4 {
		sum += uint64(binary.BigEndian.Uint32(b))
		b = b[4:]
	}
	if len(b) >= 2 {
		sum += uint64(b[0])<<8 | uint64(b[1])
		b = b[2:]
	}
	if len(b) > 0 {
		sum += uint64(b[0]) << 8
	}
	return fold64(sum)
}

// sumSlow is the original byte-pair reference implementation, kept as
// the oracle for the differential tests and fuzzer: any divergence
// between Sum and sumSlow is a bug in the wide-word engine.
func sumSlow(initial uint32, b []byte) uint32 {
	sum := initial
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)&1 != 0 {
		sum += uint32(b[len(b)-1]) << 8
	}
	return sum
}

// SumCopy copies src into dst while accumulating the ones-complement
// sum of the copied bytes — the BSD in_cksum-with-copy fusion, so an
// output path that must both move a payload into the wire buffer and
// checksum it traverses the bytes once.  dst must have room for src;
// the unfolded sum (including initial) is returned with the same
// odd-length semantics as Sum.
func SumCopy(initial uint32, dst, src []byte) uint32 {
	_ = dst[:len(src)] // fail fast on a short destination
	sum := uint64(initial)
	// Same four-lane shape as Sum, with the store fused into each load.
	if len(src) >= 32 {
		var s0, s1, s2, s3, carries uint64
		for len(src) >= 32 {
			w0 := binary.BigEndian.Uint64(src)
			w1 := binary.BigEndian.Uint64(src[8:16])
			w2 := binary.BigEndian.Uint64(src[16:24])
			w3 := binary.BigEndian.Uint64(src[24:32])
			binary.BigEndian.PutUint64(dst, w0)
			binary.BigEndian.PutUint64(dst[8:16], w1)
			binary.BigEndian.PutUint64(dst[16:24], w2)
			binary.BigEndian.PutUint64(dst[24:32], w3)
			var c0, c1, c2, c3 uint64
			s0, c0 = bits.Add64(s0, w0, 0)
			s1, c1 = bits.Add64(s1, w1, 0)
			s2, c2 = bits.Add64(s2, w2, 0)
			s3, c3 = bits.Add64(s3, w3, 0)
			carries += c0 + c1 + c2 + c3
			src, dst = src[32:], dst[32:]
		}
		sum += carries
		sum += s0>>32 + s0&0xffffffff
		sum += s1>>32 + s1&0xffffffff
		sum += s2>>32 + s2&0xffffffff
		sum += s3>>32 + s3&0xffffffff
	}
	for len(src) >= 8 {
		w := binary.BigEndian.Uint64(src)
		binary.BigEndian.PutUint64(dst, w)
		sum += w>>32 + w&0xffffffff
		src, dst = src[8:], dst[8:]
	}
	for len(src) >= 2 {
		dst[0], dst[1] = src[0], src[1]
		sum += uint64(src[0])<<8 | uint64(src[1])
		src, dst = src[2:], dst[2:]
	}
	if len(src) > 0 {
		dst[0] = src[0]
		sum += uint64(src[0]) << 8
	}
	return fold64(sum)
}

// fold64 reduces a 64-bit deferred-carry accumulator back to the
// 32-bit unfolded form.  Two ends-around passes suffice: the first
// leaves at most 2^33-2, whose high half is 0 or 1.
func fold64(s uint64) uint32 {
	s = s>>32 + s&0xffffffff
	s = s>>32 + s&0xffffffff
	return uint32(s)
}

// Fold reduces a 32-bit accumulator to the final 16-bit ones-complement
// checksum.
func Fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// FoldRaw reduces an unfolded accumulator to 16 bits without the
// final complement — the form needed when a partial sum must be
// byte-swapped to splice it in at an odd offset of a larger checksum
// (mbuf chain traversal), or fed onward as an initial accumulator.
func FoldRaw(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

// Checksum computes the internet checksum of b.
func Checksum(b []byte) uint16 { return Fold(Sum(0, b)) }

// UpdateChecksum16 incrementally updates a checksum after a single
// 16-bit field changed from `from` to `to` (RFC 1624 equation 3:
// HC' = ~(~HC + ~m + m')), so a one-field header rewrite — an IPv4
// forwarder's TTL decrement, a retransmitted TCP header's sequence
// bump — does not recompute the sum of the untouched bytes.  old is
// the checksum as it appears in the header (already complemented).
func UpdateChecksum16(old, from, to uint16) uint16 {
	sum := uint32(^old) + uint32(^from) + uint32(to)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UpdateChecksum32 is UpdateChecksum16 for an aligned 32-bit field
// (e.g. a sequence number), applied as its two 16-bit columns.
func UpdateChecksum32(old uint16, from, to uint32) uint16 {
	old = UpdateChecksum16(old, uint16(from>>16), uint16(to>>16))
	return UpdateChecksum16(old, uint16(from), uint16(to))
}

// PseudoHeader6 computes the unfolded sum of the IPv6 pseudo-header:
// source, destination, upper-layer packet length, and next-header value.
func PseudoHeader6(src, dst IP6, length uint32, nextHdr uint8) uint32 {
	sum := Sum(0, src[:])
	sum = Sum(sum, dst[:])
	sum += length>>16 + length&0xffff
	sum += uint32(nextHdr)
	return sum
}

// PseudoHeader4 computes the unfolded sum of the IPv4 pseudo-header.
func PseudoHeader4(src, dst IP4, length uint16, proto uint8) uint32 {
	sum := Sum(0, src[:])
	sum = Sum(sum, dst[:])
	sum += uint32(length)
	sum += uint32(proto)
	return sum
}

// TransportChecksum6 computes the checksum for a transport payload
// carried over IPv6 (TCP, UDP, ICMPv6 all use this form).
func TransportChecksum6(src, dst IP6, nextHdr uint8, payload []byte) uint16 {
	return Fold(Sum(PseudoHeader6(src, dst, uint32(len(payload)), nextHdr), payload))
}

// TransportChecksum4 computes the checksum for a transport payload
// carried over IPv4.
func TransportChecksum4(src, dst IP4, proto uint8, payload []byte) uint16 {
	return Fold(Sum(PseudoHeader4(src, dst, uint16(len(payload)), proto), payload))
}
