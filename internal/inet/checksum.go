package inet

// The ones-complement internet checksum (RFC 1071) and its
// pseudo-headers.  The paper leans on the checksum in three places:
// IPv4 keeps a header checksum that IPv6 drops (§2.1); ICMPv6 newly
// includes a pseudo-header in its checksum (§4); and the UDP checksum
// becomes mandatory over IPv6 because nothing else protects the
// addresses (§5.2).

// Sum computes the unfolded 32-bit ones-complement sum of b, starting
// from an initial accumulator. Use Fold to produce the 16-bit checksum.
func Sum(initial uint32, b []byte) uint32 {
	sum := initial
	n := len(b) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)&1 != 0 {
		sum += uint32(b[len(b)-1]) << 8
	}
	return sum
}

// Fold reduces a 32-bit accumulator to the final 16-bit ones-complement
// checksum.
func Fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Checksum computes the internet checksum of b.
func Checksum(b []byte) uint16 { return Fold(Sum(0, b)) }

// PseudoHeader6 computes the unfolded sum of the IPv6 pseudo-header:
// source, destination, upper-layer packet length, and next-header value.
func PseudoHeader6(src, dst IP6, length uint32, nextHdr uint8) uint32 {
	sum := Sum(0, src[:])
	sum = Sum(sum, dst[:])
	sum += length>>16 + length&0xffff
	sum += uint32(nextHdr)
	return sum
}

// PseudoHeader4 computes the unfolded sum of the IPv4 pseudo-header.
func PseudoHeader4(src, dst IP4, length uint16, proto uint8) uint32 {
	sum := Sum(0, src[:])
	sum = Sum(sum, dst[:])
	sum += uint32(length)
	sum += uint32(proto)
	return sum
}

// TransportChecksum6 computes the checksum for a transport payload
// carried over IPv6 (TCP, UDP, ICMPv6 all use this form).
func TransportChecksum6(src, dst IP6, nextHdr uint8, payload []byte) uint16 {
	return Fold(Sum(PseudoHeader6(src, dst, uint32(len(payload)), nextHdr), payload))
}

// TransportChecksum4 computes the checksum for a transport payload
// carried over IPv4.
func TransportChecksum4(src, dst IP4, proto uint8, payload []byte) uint16 {
	return Fold(Sum(PseudoHeader4(src, dst, uint16(len(payload)), proto), payload))
}
