package inet

import (
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
	// before complement.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd trailing byte is padded with zero on the right.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length checksum")
	}
	if Checksum([]byte{0x12, 0x34, 0x56}) != ^uint16(0x1234+0x5600) {
		t.Fatal("3-byte checksum")
	}
}

func TestChecksumEmpty(t *testing.T) {
	if Checksum(nil) != 0xffff {
		t.Fatal("empty checksum must be 0xffff")
	}
}

func TestChecksumCarryFold(t *testing.T) {
	// Many 0xffff words force carries.
	b := make([]byte, 4096)
	for i := range b {
		b[i] = 0xff
	}
	if got := Checksum(b); got != 0 {
		t.Fatalf("all-ones checksum = %#x, want 0", got)
	}
}

// Property: a packet with its checksum inserted verifies to zero —
// the receiver-side invariant every protocol here relies on.
func TestQuickVerifyInsertedChecksum(t *testing.T) {
	f := func(data []byte) bool {
		b := append([]byte{0, 0}, data...)
		ck := Checksum(b)
		b[0], b[1] = byte(ck>>8), byte(ck)
		return Fold(Sum(0, b)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the sum is independent of how the data is chunked
// (associativity of the accumulator), provided chunks stay 16-bit
// aligned — this is what lets us sum pseudo-header and payload
// separately.
func TestQuickChunkedSum(t *testing.T) {
	f := func(data []byte, cut uint8) bool {
		k := int(cut) % (len(data) + 1)
		k &^= 1 // keep 16-bit alignment
		whole := Fold(Sum(0, data))
		split := Fold(Sum(Sum(0, data[:k]), data[k:]))
		return whole == split
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransportChecksum6(t *testing.T) {
	src := IP6{15: 1}
	dst := IP6{15: 2}
	payload := []byte{1, 2, 3, 4}
	ck := TransportChecksum6(src, dst, 17, payload)
	// Verify by receiver rule: sum(pseudo)+sum(payload with ck) == 0.
	sum := PseudoHeader6(src, dst, uint32(len(payload)), 17)
	sum = Sum(sum, payload)
	sum += uint32(ck)
	if Fold(sum) != 0 {
		t.Fatal("v6 transport checksum does not verify")
	}
	// Changing any pseudo-header input changes the checksum
	// (the integrity-protection role from §5.2).  Note the
	// ones-complement sum is commutative, so we perturb a byte rather
	// than swap src/dst.
	src2 := src
	src2[0] ^= 0x40
	if TransportChecksum6(src2, dst, 17, payload) == ck {
		t.Fatal("checksum must cover addresses")
	}
	if TransportChecksum6(src, dst, 6, payload) == ck {
		t.Fatal("checksum must cover next header")
	}
}

func TestTransportChecksum4(t *testing.T) {
	src := IP4{10, 0, 0, 1}
	dst := IP4{10, 0, 0, 2}
	payload := []byte{9, 8, 7}
	ck := TransportChecksum4(src, dst, 17, payload)
	sum := PseudoHeader4(src, dst, uint16(len(payload)), 17)
	sum = Sum(sum, payload)
	sum += uint32(ck)
	if Fold(sum) != 0 {
		t.Fatal("v4 transport checksum does not verify")
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

// BenchmarkChecksumSlow1500 times the retired byte-pair loop on the
// same buffer, so the wide-word speedup is visible as the ratio of the
// two in any bench run.
func BenchmarkChecksumSlow1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Fold(sumSlow(0, buf))
	}
}

func BenchmarkSumCopy1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	dst := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		SumCopy(0, dst, buf)
	}
}

func BenchmarkUpdateChecksum32(b *testing.B) {
	ck := uint16(0x1234)
	for i := 0; i < b.N; i++ {
		ck = UpdateChecksum32(ck, uint32(i), uint32(i)+1461)
	}
	sinkCk = ck
}

var sinkCk uint16
