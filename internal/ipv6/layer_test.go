package ipv6

import (
	"testing"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/route"
)

// bareLayer builds a layer with one interface carrying the given
// addresses, without any ICMPv6/ND attachment.
func bareLayer(t *testing.T, addrs ...netif.Addr6) (*Layer, *netif.Interface) {
	t.Helper()
	rt := route.NewTable()
	l := NewLayer(rt)
	hub := netif.NewHub()
	ifp := netif.New("t0", inet.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	hub.Attach(ifp)
	for _, a := range addrs {
		if err := ifp.AddAddr6(a); err != nil {
			t.Fatal(err)
		}
	}
	l.AddInterface(ifp)
	return l, ifp
}

func TestSourceForScopeMatching(t *testing.T) {
	ll := inet.LinkLocal([8]byte{1})
	global := ip6(t, "2001:db8::7")
	l, _ := bareLayer(t,
		netif.Addr6{Addr: ll, Plen: 64},
		netif.Addr6{Addr: global, Plen: 64},
	)
	// Link-local destination gets the link-local source.
	if src, ok := l.SourceFor(ip6(t, "fe80::99"), nil); !ok || src != ll {
		t.Fatalf("link-local dst: %v %v", src, ok)
	}
	// Link-local multicast too.
	if src, ok := l.SourceFor(inet.AllNodes, nil); !ok || src != ll {
		t.Fatalf("all-nodes dst: %v %v", src, ok)
	}
	// Global destination gets the global source.
	if src, ok := l.SourceFor(ip6(t, "2001:db8:9::1"), nil); !ok || src != global {
		t.Fatalf("global dst: %v %v", src, ok)
	}
}

func TestSourceForPrefersLongestMatch(t *testing.T) {
	ll := inet.LinkLocal([8]byte{1})
	near := ip6(t, "2001:db8:aaaa::1")
	far := ip6(t, "2001:db8:bbbb::1")
	l, _ := bareLayer(t,
		netif.Addr6{Addr: ll, Plen: 64},
		netif.Addr6{Addr: far, Plen: 64},
		netif.Addr6{Addr: near, Plen: 64},
	)
	if src, _ := l.SourceFor(ip6(t, "2001:db8:aaaa::99"), nil); src != near {
		t.Fatalf("longest match: got %v", src)
	}
	if src, _ := l.SourceFor(ip6(t, "2001:db8:bbbb::99"), nil); src != far {
		t.Fatalf("longest match: got %v", src)
	}
}

func TestSourceForAvoidsDeprecatedAndTentative(t *testing.T) {
	now := time.Now()
	ll := inet.LinkLocal([8]byte{1})
	deprecated := ip6(t, "2001:db8:aaaa::1")
	fresh := ip6(t, "2001:db8:aaaa::2")
	tentative := ip6(t, "2001:db8:aaaa::3")
	l, _ := bareLayer(t,
		netif.Addr6{Addr: ll, Plen: 64},
		netif.Addr6{Addr: deprecated, Plen: 64, Created: now.Add(-time.Hour), PreferredLft: time.Minute},
		netif.Addr6{Addr: fresh, Plen: 64},
		netif.Addr6{Addr: tentative, Plen: 64, Tentative: true},
	)
	// At equal prefix match the preferred (non-deprecated) address wins;
	// tentative addresses are not usable at all.
	if src, _ := l.SourceFor(ip6(t, "2001:db8:aaaa::99"), nil); src != fresh {
		t.Fatalf("got %v, want the fresh address", src)
	}
}

func TestSourceForNoUsable(t *testing.T) {
	l, _ := bareLayer(t, netif.Addr6{Addr: inet.LinkLocal([8]byte{1}), Plen: 64, Tentative: true})
	if _, ok := l.SourceFor(ip6(t, "fe80::9"), nil); ok {
		t.Fatal("tentative-only interface yielded a source")
	}
}

func TestEnsureHostRouteClonesGatewayRoutes(t *testing.T) {
	l, ifp := bareLayer(t, netif.Addr6{Addr: inet.LinkLocal([8]byte{1}), Plen: 64})
	var zero inet.IP6
	gw := ip6(t, "fe80::1")
	l.Routes().Add(&route.Entry{
		Family: inet.AFInet6, Dst: zero[:], Plen: 0,
		Flags: route.FlagUp | route.FlagGateway, Gateway: gw, IfName: ifp.Name, MTU: 1400,
	})
	dst := ip6(t, "2001:db8::42")
	rt, ok := l.ensureHostRoute(dst)
	if !ok || !rt.Host() {
		t.Fatalf("no host route: %+v", rt)
	}
	if rt.Flags&route.FlagGateway == 0 || rt.MTU != 1400 {
		t.Fatalf("clone lost gateway/MTU: %+v", rt)
	}
	// Idempotent: a second call returns the same entry.
	rt2, _ := l.ensureHostRoute(dst)
	if rt2 != rt {
		t.Fatal("second ensureHostRoute cloned again")
	}
	// This is where PMTU lives (§2.2): shrinking it affects only this
	// destination.
	l.Routes().Change(rt, func(e *route.Entry) { e.MTU = 600 })
	other, _ := l.ensureHostRoute(ip6(t, "2001:db8::43"))
	if other.MTU != 1400 {
		t.Fatal("PMTU leaked across destinations")
	}
}

func TestBuildExtChainPatching(t *testing.T) {
	opts := &OutputOpts{
		HopOpts:      []Option{{Type: 0x05, Data: []byte{1}}},
		RoutingAddrs: []inet.IP6{ip6(t, "2001:db8::1")},
		DstOptsList:  []Option{{Type: 0x05, Data: []byte{2}}},
	}
	chain, fragPart, fragNH := buildExt(opts, proto.UDP)
	if chain.firstNH != proto.HopByHop {
		t.Fatalf("firstNH = %d", chain.firstNH)
	}
	if fragNH != proto.DstOpts {
		t.Fatalf("fragNH = %d", fragNH)
	}
	if len(fragPart) == 0 || fragPart[0] != proto.UDP {
		t.Fatalf("dst-opts next = %v", fragPart)
	}
	// unfrag = hbh + routing; the hbh points at routing, the routing's
	// next-header byte (at unfragPatch) points at the frag part.
	if chain.unfrag[0] != proto.Routing {
		t.Fatalf("hbh next = %d", chain.unfrag[0])
	}
	if chain.unfrag[chain.unfragPatch] != proto.DstOpts {
		t.Fatalf("patch byte = %d", chain.unfrag[chain.unfragPatch])
	}
	// Patching for fragmentation rewrites exactly that byte.
	chain.unfrag[chain.unfragPatch] = proto.Fragment
	rh, err := ParseRouting(chain.unfrag[chain.unfragPatch:])
	if err != nil || rh.NextHdr != proto.Fragment {
		t.Fatalf("routing after patch: %+v %v", rh, err)
	}
}

func TestBuildExtNoHeaders(t *testing.T) {
	chain, fragPart, fragNH := buildExt(&OutputOpts{}, proto.TCP)
	if chain.firstNH != proto.TCP || len(chain.unfrag) != 0 || len(fragPart) != 0 || fragNH != proto.TCP {
		t.Fatalf("empty chain: %+v %v %d", chain, fragPart, fragNH)
	}
}

func TestUnspecSourceRespected(t *testing.T) {
	l, ifp := bareLayer(t, netif.Addr6{Addr: inet.LinkLocal([8]byte{1}), Plen: 64})
	var captured []byte
	peer := netif.New("peer", inet.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)
	peer.SetFlags(netif.FlagPromisc|netif.FlagUp, true)
	peer.SetInput(func(_ *netif.Interface, fr netif.Frame) {
		captured = fr.Payload.CopyBytes()
	})
	// Reuse the layer's hub via a second attach.
	hubOf(t, ifp).Attach(peer)

	pkt := mbuf.New([]byte{1, 2, 3, 4})
	err := l.Output(pkt, inet.IP6{}, inet.SolicitedNode(ip6(t, "fe80::9")), proto.ICMPv6,
		OutputOpts{IfName: ifp.Name, UnspecSource: true, HopLimit: 255})
	if err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("nothing on the wire")
	}
	h, _ := Parse(captured)
	if !h.Src.IsUnspecified() {
		t.Fatalf("source = %v, want ::", h.Src)
	}
	if h.HopLimit != 255 {
		t.Fatalf("hops = %d", h.HopLimit)
	}
}

// hubOf sneaks the hub back out of an attached interface by attaching
// through a fresh hub would break delivery; instead tests share the hub
// explicitly. Here we re-derive it via a tiny shim.
func hubOf(t *testing.T, ifp *netif.Interface) *netif.Hub {
	t.Helper()
	// netif does not expose the hub; emulate by creating a hub and
	// re-attaching the interface to it.
	h := netif.NewHub()
	h.Attach(ifp)
	return h
}

func TestForwardProcessesHopByHop(t *testing.T) {
	// A router must process hop-by-hop options on transit packets
	// (§2.1) — a discard-action option stops forwarding.
	rt := route.NewTable()
	l := NewLayer(rt)
	l.Forwarding = true
	hub := netif.NewHub()
	in := netif.New("in0", inet.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	out := netif.New("out0", inet.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)
	hub.Attach(in)
	hub.Attach(out)
	in.AddAddr6(netif.Addr6{Addr: inet.LinkLocal([8]byte{1}), Plen: 64})
	out.AddAddr6(netif.Addr6{Addr: inet.LinkLocal([8]byte{2}), Plen: 64})
	l.AddInterface(in)
	l.AddInterface(out)
	dstNet := ip6(t, "2001:db8:2::")
	rt.Add(&route.Entry{Family: inet.AFInet6, Dst: dstNet[:], Plen: 64,
		Flags: route.FlagUp | route.FlagCloning | route.FlagLLInfo, IfName: out.Name})

	mk := func(optType byte) *mbuf.Mbuf {
		hbh := MarshalOptions(proto.UDP, []Option{{Type: optType, Data: []byte{9}}})
		h := &Header{NextHdr: proto.HopByHop, HopLimit: 8, PayloadLen: len(hbh) + 2,
			Src: ip6(t, "2001:db8:1::5"), Dst: ip6(t, "2001:db8:2::9")}
		pkt := mbuf.New(h.Marshal(nil))
		pkt.Append(hbh)
		pkt.Append([]byte{0xaa, 0xbb})
		return pkt
	}
	// Skip-action option: forwarded.
	l.Input(in, mk(0x05))
	if l.Stats.Forwarded.Get() != 1 {
		t.Fatalf("skip-option packet not forwarded: %+v", &l.Stats)
	}
	// Discard-action option: dropped by the router.
	l.Input(in, mk(0x45))
	if l.Stats.Forwarded.Get() != 1 {
		t.Fatal("discard-option packet forwarded")
	}
	if l.Stats.InOptErrors.Get() == 0 {
		t.Fatal("option error not counted")
	}
}

func TestInputTrimsLinkPadding(t *testing.T) {
	l, ifp := bareLayer(t, netif.Addr6{Addr: inet.LinkLocal([8]byte{1}), Plen: 64})
	var got int
	l.Register(proto.UDP, func(pkt *mbuf.Mbuf, meta *proto.Meta) { got = pkt.Len() }, nil)
	ll := inet.LinkLocal([8]byte{1})
	h := &Header{NextHdr: proto.UDP, HopLimit: 4, PayloadLen: 10, Src: ip6(t, "fe80::2"), Dst: ll}
	pkt := mbuf.New(h.Marshal(nil))
	pkt.Append(make([]byte, 10))
	pkt.Append(make([]byte, 26)) // ethernet-style trailing pad
	l.Input(ifp, pkt)
	if got != 10 {
		t.Fatalf("delivered %d bytes, want 10", got)
	}
}

func TestOversizeDatagramRejected(t *testing.T) {
	l, ifp := bareLayer(t, netif.Addr6{Addr: inet.LinkLocal([8]byte{1}), Plen: 64})
	_ = ifp
	pkt := mbuf.New(make([]byte, 70000))
	err := l.Output(pkt, inet.IP6{}, inet.LinkLocal([8]byte{1}), proto.UDP, OutputOpts{})
	if err != ErrMsgSize {
		t.Fatalf("err = %v, want ErrMsgSize", err)
	}
}

func TestGroupRefcounting(t *testing.T) {
	l, ifp := bareLayer(t, netif.Addr6{Addr: inet.LinkLocal([8]byte{1}), Plen: 64})
	g := ip6(t, "ff02::42")
	changes := 0
	l.OnGroupChange = func(string, inet.IP6, bool) { changes++ }
	l.JoinGroup(ifp.Name, g)
	l.JoinGroup(ifp.Name, g) // refcounted: no second report
	if changes != 1 {
		t.Fatalf("join changes = %d", changes)
	}
	if !l.InGroup(ifp.Name, g) {
		t.Fatal("not in group")
	}
	l.LeaveGroup(ifp.Name, g)
	if !l.InGroup(ifp.Name, g) {
		t.Fatal("left group too early")
	}
	l.LeaveGroup(ifp.Name, g)
	if l.InGroup(ifp.Name, g) {
		t.Fatal("still in group")
	}
	if changes != 2 {
		t.Fatalf("total changes = %d", changes)
	}
	if err := l.JoinGroup("nosuch", g); err == nil {
		t.Fatal("join on missing interface succeeded")
	}
}
