package ipv6

import (
	"bytes"
	"testing"
	"testing/quick"

	"bsd6/internal/inet"
	"bsd6/internal/proto"
)

func ip6(t *testing.T, s string) inet.IP6 {
	t.Helper()
	a, err := inet.ParseIP6(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{
		FlowInfo:   0x0abcdef, // 4-bit priority + 24-bit label
		PayloadLen: 512,
		NextHdr:    proto.TCP,
		HopLimit:   64,
		Src:        ip6(t, "fe80::1"),
		Dst:        ip6(t, "2001:db8::2"),
	}
	wire := h.Marshal(nil)
	if len(wire) != HeaderLen {
		t.Fatalf("len = %d", len(wire))
	}
	if wire[0]>>4 != 6 {
		t.Fatal("version")
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(flow uint32, plen uint16, nh, hops uint8, src, dst inet.IP6) bool {
		h := &Header{FlowInfo: flow & 0x0fffffff, PayloadLen: int(plen), NextHdr: nh, HopLimit: hops, Src: src, Dst: dst}
		got, err := Parse(h.Marshal(nil))
		return err == nil && *got == *h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(make([]byte, 39)); err != ErrShort {
		t.Fatal("short")
	}
	b := make([]byte, 40)
	b[0] = 4 << 4
	if _, err := Parse(b); err != ErrVersion {
		t.Fatal("version")
	}
}

func TestOptionsMarshalAligned(t *testing.T) {
	for n := 0; n <= 16; n++ {
		opts := []Option{{Type: 0x05, Data: make([]byte, n)}} // router-alert-ish, skip action
		body := MarshalOptions(proto.TCP, opts)
		if len(body)%8 != 0 {
			t.Fatalf("n=%d: body len %d not 8-aligned", n, len(body))
		}
		if body[0] != proto.TCP {
			t.Fatal("next header")
		}
		if int(body[1]) != len(body)/8-1 {
			t.Fatalf("length field %d for %d bytes", body[1], len(body))
		}
		got, err := ParseOptions(body[2:], func(t byte) bool { return t == 0x05 })
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != 1 || got[0].Type != 0x05 || len(got[0].Data) != n {
			t.Fatalf("n=%d: got %+v", n, got)
		}
	}
}

func TestOptionsUnknownActions(t *testing.T) {
	mk := func(typ byte) []byte {
		return MarshalOptions(proto.TCP, []Option{{Type: typ, Data: []byte{1, 2}}})
	}
	// Skip action: parses fine, option dropped.
	if _, err := ParseOptions(mk(0x05)[2:], nil); err != nil {
		t.Fatalf("skip action: %v", err)
	}
	// Discard actions: OptionError with the right bits.
	for _, typ := range []byte{0x45, 0x85, 0xc5} {
		_, err := ParseOptions(mk(typ)[2:], nil)
		oe, ok := err.(*OptionError)
		if !ok {
			t.Fatalf("type %#x: err = %v", typ, err)
		}
		if oe.Action != typ&0xc0 {
			t.Fatalf("type %#x: action %#x", typ, oe.Action)
		}
	}
}

func TestOptionsTruncated(t *testing.T) {
	if _, err := ParseOptions([]byte{5}, nil); err != ErrExtHdr {
		t.Fatal("lone type byte")
	}
	if _, err := ParseOptions([]byte{5, 10, 1}, nil); err != ErrExtHdr {
		t.Fatal("length beyond body")
	}
}

func TestFragHeaderRoundTrip(t *testing.T) {
	f := func(nh uint8, off uint16, more bool, id uint32) bool {
		fh := &FragHeader{NextHdr: nh, Off: int(off&0x1fff) &^ 7, More: more, ID: id}
		got, err := ParseFrag(fh.Marshal(nil))
		return err == nil && got.NextHdr == fh.NextHdr && got.Off == fh.Off && got.More == fh.More && got.ID == fh.ID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFrag(make([]byte, 7)); err != ErrShort {
		t.Fatal("short frag")
	}
}

func TestRoutingHeaderRoundTrip(t *testing.T) {
	r := &RoutingHeader{
		NextHdr: proto.UDP,
		SegLeft: 2,
		Addrs:   []inet.IP6{ip6(t, "2001:db8::1"), ip6(t, "2001:db8::2")},
	}
	wire := r.Marshal(nil)
	if len(wire) != 8+32 {
		t.Fatalf("len = %d", len(wire))
	}
	got, err := ParseRouting(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.SegLeft != 2 || len(got.Addrs) != 2 || got.Addrs[1] != r.Addrs[1] {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestRoutingHeaderErrors(t *testing.T) {
	r := &RoutingHeader{NextHdr: proto.UDP, SegLeft: 1, Addrs: []inet.IP6{{15: 1}}}
	wire := r.Marshal(nil)
	wire[3] = 5 // segments left > addresses
	if _, err := ParseRouting(wire); err != ErrExtHdr {
		t.Fatal("segleft overflow")
	}
	if _, err := ParseRouting(wire[:7]); err != ErrShort {
		t.Fatal("short")
	}
	wire2 := r.Marshal(nil)
	wire2[1] = 1 // odd ext len
	if _, err := ParseRouting(wire2[:16]); err != ErrExtHdr {
		t.Fatal("odd extlen")
	}
}

// buildChain assembles base header + extension chain + payload for
// preparse tests.
func buildChain(t *testing.T, payload []byte) []byte {
	t.Helper()
	// dstopts -> payload (UDP)
	dst := MarshalOptions(proto.UDP, []Option{{Type: 0x05, Data: []byte{1}}})
	// routing -> dstopts
	rh := &RoutingHeader{NextHdr: proto.DstOpts, SegLeft: 0, Addrs: []inet.IP6{{15: 9}}}
	rb := rh.Marshal(nil)
	// hbh -> routing
	hbh := MarshalOptions(proto.Routing, []Option{{Type: 0x05, Data: []byte{2}}})
	h := &Header{NextHdr: proto.HopByHop, HopLimit: 64, PayloadLen: len(hbh) + len(rb) + len(dst) + len(payload)}
	out := h.Marshal(nil)
	out = append(out, hbh...)
	out = append(out, rb...)
	out = append(out, dst...)
	return append(out, payload...)
}

func TestPreparseChain(t *testing.T) {
	pkt := buildChain(t, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	info, err := Preparse(pkt, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Ext) != 3 {
		t.Fatalf("ext count = %d", len(info.Ext))
	}
	want := []uint8{proto.HopByHop, proto.Routing, proto.DstOpts}
	for i, rec := range info.Ext {
		if rec.Proto != want[i] {
			t.Fatalf("ext[%d] = %d, want %d", i, rec.Proto, want[i])
		}
	}
	if info.Final != proto.UDP {
		t.Fatalf("final = %d", info.Final)
	}
	if info.FinalOff != len(pkt)-8 {
		t.Fatalf("final off = %d", info.FinalOff)
	}
	// Offsets must tile: each ext starts where the previous ended.
	at := HeaderLen
	for _, rec := range info.Ext {
		if rec.Offset != at {
			t.Fatalf("offset %d, want %d", rec.Offset, at)
		}
		at += rec.Len
	}
}

func TestPreparseFastPath(t *testing.T) {
	h := &Header{NextHdr: proto.TCP, HopLimit: 64, PayloadLen: 4}
	pkt := append(h.Marshal(nil), 1, 2, 3, 4)
	info, err := Preparse(pkt, true)
	if err != nil || len(info.Ext) != 0 || info.Final != proto.TCP || info.FinalOff != HeaderLen {
		t.Fatalf("fast path: %+v %v", info, err)
	}
	// Fast path must not be taken when extension headers are present.
	chain := buildChain(t, []byte{1})
	info, err = Preparse(chain, true)
	if err != nil || len(info.Ext) != 3 {
		t.Fatalf("fast path with ext: %+v %v", info, err)
	}
}

func TestPreparseStopsAtFragment(t *testing.T) {
	// base -> frag -> (opaque mid-datagram bytes that would misparse)
	fh := &FragHeader{NextHdr: proto.UDP, Off: 8, More: true, ID: 1}
	fb := fh.Marshal(nil)
	h := &Header{NextHdr: proto.Fragment, HopLimit: 4, PayloadLen: len(fb) + 4}
	pkt := append(h.Marshal(nil), fb...)
	pkt = append(pkt, 0xff, 0xff, 0xff, 0xff)
	info, err := Preparse(pkt, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Ext) != 1 || info.Ext[0].Proto != proto.Fragment {
		t.Fatalf("ext = %+v", info.Ext)
	}
	if info.Final != proto.UDP || info.FinalOff != HeaderLen+FragHeaderLen {
		t.Fatalf("final=%d off=%d", info.Final, info.FinalOff)
	}
}

func TestPreparseTruncated(t *testing.T) {
	chain := buildChain(t, []byte{1, 2, 3})
	// Cut inside the routing header.
	cut := chain[:HeaderLen+8+4]
	info, err := Preparse(cut, false)
	if err == nil {
		t.Fatal("truncated chain parsed")
	}
	if info == nil || !info.Truncated {
		t.Fatal("Truncated not set")
	}
}

func TestPreparseAH(t *testing.T) {
	// base -> AH -> TCP. RFC 1826 AH: next(1) len(1, auth words) res(2)
	// spi(4) + auth data.
	ah := []byte{proto.TCP, 4, 0, 0, 0, 0, 1, 0}
	ah = append(ah, make([]byte, 16)...) // 4 words of digest
	h := &Header{NextHdr: proto.AH, HopLimit: 9, PayloadLen: len(ah) + 2}
	pkt := append(h.Marshal(nil), ah...)
	pkt = append(pkt, 0xaa, 0xbb)
	info, err := Preparse(pkt, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Ext) != 1 || info.Ext[0].Proto != proto.AH || info.Ext[0].Len != 24 {
		t.Fatalf("ext = %+v", info.Ext)
	}
	if info.Final != proto.TCP || info.FinalOff != HeaderLen+24 {
		t.Fatalf("final=%d off=%d", info.Final, info.FinalOff)
	}
}

// Property: for random padding-only option sets, marshal/parse is
// total and consumes the body exactly.
func TestQuickOptionsPadding(t *testing.T) {
	f := func(sizes []uint8) bool {
		var opts []Option
		for _, s := range sizes {
			opts = append(opts, Option{Type: 0x05, Data: make([]byte, int(s)%32)})
		}
		body := MarshalOptions(proto.TCP, opts)
		if len(body)%8 != 0 {
			return false
		}
		got, err := ParseOptions(body[2:], func(t byte) bool { return t == 0x05 })
		if err != nil {
			return false
		}
		if len(got) != len(opts) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i].Data, opts[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
