// Package ipv6 implements the IPv6 network layer — the paper's primary
// contribution (§2).  Compared with the IPv4 layer it drops the header
// checksum and in-network fragmentation, adds daisy-chained extension
// headers that input processing pre-parses (§2.2), relies on Path MTU
// discovery with per-destination MTU stored in host routes, and calls
// out to the IP security module at the points §3.3/§3.4 specify.
package ipv6

import (
	"errors"
	"fmt"

	"bsd6/internal/inet"
	"bsd6/internal/proto"
)

// HeaderLen is the fixed IPv6 header size.
const HeaderLen = 40

// MinMTU is the minimum IPv6 link MTU (§2.2; the 1995 specification
// said 576, later raised to 1280 — we keep the paper's value).
const MinMTU = 576

// Header is the parsed IPv6 base header (paper Figure 3):
// version / priority / flow label, payload length, next header,
// hop limit, and the two 128-bit addresses.
type Header struct {
	// FlowInfo packs the 4-bit priority and 24-bit flow label, the
	// resource-reservation hook (§2.1).
	FlowInfo   uint32
	PayloadLen int
	NextHdr    uint8
	HopLimit   uint8
	Src, Dst   inet.IP6
}

// Errors from parsing.
var (
	ErrShort   = errors.New("ipv6: packet too short")
	ErrVersion = errors.New("ipv6: bad version")
	ErrLength  = errors.New("ipv6: bad payload length")
	ErrExtHdr  = errors.New("ipv6: malformed extension header")
)

// Marshal appends the 40-byte wire header to dst.  Note what is absent
// relative to IPv4: no checksum to compute (§2.1).
func (h *Header) Marshal(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, HeaderLen)...)
	b := dst[off:]
	b[0] = 6<<4 | byte(h.FlowInfo>>24)&0x0f
	b[1] = byte(h.FlowInfo >> 16)
	b[2] = byte(h.FlowInfo >> 8)
	b[3] = byte(h.FlowInfo)
	b[4], b[5] = byte(h.PayloadLen>>8), byte(h.PayloadLen)
	b[6] = h.NextHdr
	b[7] = h.HopLimit
	copy(b[8:24], h.Src[:])
	copy(b[24:40], h.Dst[:])
	return dst
}

// Parse decodes the base header. An IPv6 receiver "initially only has
// to check the validity of the version and destination address" — no
// checksum verification (§2.1).
func Parse(b []byte) (*Header, error) {
	if len(b) < HeaderLen {
		return nil, ErrShort
	}
	if b[0]>>4 != 6 {
		return nil, ErrVersion
	}
	h := &Header{
		FlowInfo:   uint32(b[0]&0x0f)<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]),
		PayloadLen: int(b[4])<<8 | int(b[5]),
		NextHdr:    b[6],
		HopLimit:   b[7],
	}
	copy(h.Src[:], b[8:24])
	copy(h.Dst[:], b[24:40])
	return h, nil
}

func (h *Header) String() string {
	return fmt.Sprintf("ipv6 %s > %s nh=%d plen=%d hlim=%d flow=%#x",
		h.Src, h.Dst, h.NextHdr, h.PayloadLen, h.HopLimit, h.FlowInfo)
}

//
// Extension headers.
//

// Option is one TLV option inside a hop-by-hop or destination options
// header.
type Option struct {
	Type byte
	Data []byte
}

// Option types.
const (
	OptPad1 = 0
	OptPadN = 1
)

// Option-type action bits (what to do with an unrecognized option).
const (
	OptActSkip        = 0x00 // skip over
	OptActDiscard     = 0x40 // silently discard
	OptActDiscardICMP = 0x80 // discard, send param problem
	OptActDiscardMcst = 0xc0 // discard, send param problem unless multicast
	optActMask        = 0xc0
)

// MarshalOptions builds a hop-by-hop or destination options header
// body: next-header, length, and padded TLVs.
func MarshalOptions(next uint8, opts []Option) []byte {
	body := []byte{next, 0}
	for _, o := range opts {
		if o.Type == OptPad1 {
			body = append(body, 0)
			continue
		}
		body = append(body, o.Type, byte(len(o.Data)))
		body = append(body, o.Data...)
	}
	// Pad to a multiple of 8 octets.
	switch rem := len(body) % 8; {
	case rem == 7:
		body = append(body, OptPad1)
	case rem != 0:
		n := 8 - rem - 2
		body = append(body, OptPadN, byte(n))
		body = append(body, make([]byte, n)...)
	}
	body[1] = byte(len(body)/8 - 1)
	return body
}

// ParseOptions walks the TLVs of an options header body (after the
// next/len bytes). It returns the options, or the byte offset (within
// the body) of an offending option and an error describing the action.
type OptionError struct {
	Offset int  // offset of the option type byte within the ext header
	Action byte // the discard action bits
}

func (e *OptionError) Error() string { return "ipv6: unrecognized option" }

// ParseOptions decodes all options in body (the bytes after the 2-byte
// header of a hop-by-hop/dst-opts header). known reports whether the
// caller understands an option type.
func ParseOptions(body []byte, known func(byte) bool) ([]Option, error) {
	var opts []Option
	i := 0
	for i < len(body) {
		t := body[i]
		if t == OptPad1 {
			i++
			continue
		}
		if i+2 > len(body) {
			return nil, ErrExtHdr
		}
		n := int(body[i+1])
		if i+2+n > len(body) {
			return nil, ErrExtHdr
		}
		if t != OptPadN {
			if known == nil || !known(t) {
				if act := t & optActMask; act != OptActSkip {
					return nil, &OptionError{Offset: i + 2, Action: act}
				}
			} else {
				opts = append(opts, Option{Type: t, Data: append([]byte(nil), body[i+2:i+2+n]...)})
			}
		}
		i += 2 + n
	}
	return opts, nil
}

// Fragment header (8 bytes).
const FragHeaderLen = 8

// FragHeader is the IPv6 fragment header.
type FragHeader struct {
	NextHdr uint8
	Off     int // byte offset, multiple of 8
	More    bool
	ID      uint32
}

// Marshal appends the fragment header to dst.
func (f *FragHeader) Marshal(dst []byte) []byte {
	b := make([]byte, FragHeaderLen)
	b[0] = f.NextHdr
	v := uint16(f.Off)
	if f.More {
		v |= 1
	}
	b[2], b[3] = byte(v>>8), byte(v)
	b[4] = byte(f.ID >> 24)
	b[5] = byte(f.ID >> 16)
	b[6] = byte(f.ID >> 8)
	b[7] = byte(f.ID)
	return append(dst, b...)
}

// ParseFrag decodes a fragment header.
func ParseFrag(b []byte) (*FragHeader, error) {
	if len(b) < FragHeaderLen {
		return nil, ErrShort
	}
	v := uint16(b[2])<<8 | uint16(b[3])
	return &FragHeader{
		NextHdr: b[0],
		Off:     int(v &^ 0x7),
		More:    v&1 != 0,
		ID:      uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
	}, nil
}

// RoutingHeader is the type-0 routing header (loose/strict source
// routing; §4.1 mentions errors with strict source routing).
type RoutingHeader struct {
	NextHdr    uint8
	SegLeft    int
	Addrs      []inet.IP6
	StrictBits uint32 // paper-era RH0 carried a strict/loose bit map
}

// Marshal appends the routing header.
func (r *RoutingHeader) Marshal(dst []byte) []byte {
	b := make([]byte, 8+16*len(r.Addrs))
	b[0] = r.NextHdr
	b[1] = byte(2 * len(r.Addrs)) // length in 8-octet units beyond the first 8
	b[2] = 0                      // routing type 0
	b[3] = byte(r.SegLeft)
	b[4] = byte(r.StrictBits >> 24)
	b[5] = byte(r.StrictBits >> 16)
	b[6] = byte(r.StrictBits >> 8)
	b[7] = byte(r.StrictBits)
	for i, a := range r.Addrs {
		copy(b[8+16*i:], a[:])
	}
	return append(dst, b...)
}

// ParseRouting decodes a type-0 routing header.
func ParseRouting(b []byte) (*RoutingHeader, error) {
	if len(b) < 8 {
		return nil, ErrShort
	}
	extLen := int(b[1])
	total := 8 + extLen*8
	if len(b) < total || extLen%2 != 0 {
		return nil, ErrExtHdr
	}
	r := &RoutingHeader{
		NextHdr:    b[0],
		SegLeft:    int(b[3]),
		StrictBits: uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
	}
	n := extLen / 2
	if r.SegLeft > n {
		return nil, ErrExtHdr
	}
	for i := 0; i < n; i++ {
		var a inet.IP6
		copy(a[:], b[8+16*i:])
		r.Addrs = append(r.Addrs, a)
	}
	return r, nil
}

//
// Pre-parsing (§2.2): "Our implementation pre-parses an IP packet into
// its constituent headers and upper-layer protocol data as part of the
// initial IPv6 input processing."
//

// HeaderRec locates one header within a packet.
type HeaderRec struct {
	Proto  uint8 // the header's own protocol number
	Offset int   // byte offset from the start of the IPv6 packet
	Len    int   // length of this header in bytes
}

// PacketInfo is the result of pre-parsing.
type PacketInfo struct {
	Ext       []HeaderRec // extension headers, in order
	Final     uint8       // first non-extension next-header value
	FinalOff  int         // offset of the upper-layer header / opaque data
	Truncated bool        // chain ran past the packet end
}

// extHeaderLen returns the length of the extension header of type p
// starting at b, or -1 if p is not a (scannable) extension header.
// ESP is not scannable: everything after its SPI is opaque until
// decryption.
func extHeaderLen(p uint8, b []byte) int {
	switch p {
	case proto.HopByHop, proto.DstOpts, proto.Routing:
		if len(b) < 2 {
			return -2
		}
		return 8 + int(b[1])*8
	case proto.Fragment:
		if len(b) < FragHeaderLen {
			return -2
		}
		return FragHeaderLen
	case proto.AH:
		// RFC 1826: length field counts 32-bit words of auth data.
		if len(b) < 2 {
			return -2
		}
		return 8 + int(b[1])*4
	default:
		return -1
	}
}

// IsExt reports whether p is an extension header this stack walks
// through on input (ESP terminates the walk; its interior is opaque).
func IsExt(p uint8) bool {
	switch p {
	case proto.HopByHop, proto.DstOpts, proto.Routing, proto.Fragment, proto.AH:
		return true
	}
	return false
}

// Preparse scans the daisy-chained headers of packet b (starting with
// the base header) and records each one.  fastPath enables the paper's
// planned optimization: when the first next-header is not an extension
// header, skip the scan entirely.
func Preparse(b []byte, fastPath bool) (*PacketInfo, error) {
	h, err := Parse(b)
	if err != nil {
		return nil, err
	}
	info := &PacketInfo{Final: h.NextHdr, FinalOff: HeaderLen}
	if fastPath && !IsExt(h.NextHdr) {
		return info, nil
	}
	nh := h.NextHdr
	off := HeaderLen
	for IsExt(nh) {
		n := extHeaderLen(nh, b[off:])
		if n == -2 || off+n > len(b) {
			info.Truncated = true
			return info, ErrExtHdr
		}
		info.Ext = append(info.Ext, HeaderRec{Proto: nh, Offset: off, Len: n})
		next := b[off]
		isFrag := nh == proto.Fragment
		off += n
		nh = next
		if isFrag {
			// Stop at a fragment header: for any fragment but the
			// first, what follows is mid-datagram payload, not a
			// header chain.  The reassembled datagram is re-preparsed.
			break
		}
		if len(info.Ext) > 64 {
			return info, ErrExtHdr
		}
	}
	info.Final = nh
	info.FinalOff = off
	return info, nil
}
