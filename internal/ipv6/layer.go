package ipv6

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bsd6/internal/inet"
	"bsd6/internal/key"
	"bsd6/internal/mbuf"
	"bsd6/internal/netif"
	"bsd6/internal/proto"
	"bsd6/internal/reasm"
	"bsd6/internal/route"
	"bsd6/internal/stat"
)

// Stats counts IPv6 protocol events.
type Stats struct {
	InReceives    stat.Counter
	InHdrErrors   stat.Counter
	InAddrErrors  stat.Counter
	InUnknownProt stat.Counter
	InTruncated   stat.Counter
	InDelivers    stat.Counter
	ReasmOverflow stat.Counter // datagrams evicted by a reassembly quota
	InOptErrors   stat.Counter
	Forwarded     stat.Counter
	FwdCacheHits  stat.Counter // forwards resolved from the held-route shards
	OutRequests   stat.Counter
	OutNoRoute    stat.Counter
	OutDrops      stat.Counter
	OutFrags      stat.Counter
	FragsReceived stat.Counter
	Reassembled   stat.Counter
	ReasmFails    stat.Counter
	RouteHdrSeen  stat.Counter
	FastPathHits  stat.Counter
	PreparseRuns  stat.Counter
}

// Output errors.
var (
	ErrNoRoute = errors.New("ipv6: no route to host")
	ErrReject  = errors.New("ipv6: host is unreachable (rejected)")
	ErrMsgSize = errors.New("ipv6: message too long")
	ErrNoSrc   = errors.New("ipv6: no usable source address")
)

// ICMPv6 error kinds the layer can ask its error sink to emit.  The
// actual message construction lives in icmp6; the layer only knows the
// trigger points.
const (
	ErrDstUnreach   = 1 // type 1: no route (code 0), addr unreachable (code 3)
	ErrPacketTooBig = 2 // type 2: forwarding hit a smaller link MTU
	ErrTimeExceeded = 3 // type 3: hop limit exhausted
	ErrParamProblem = 4 // type 4: bad header field / unknown option or header
)

// Parameter-problem codes (type 4).
const (
	ParamErrHeader  = 0 // erroneous header field
	ParamUnknownNH  = 1 // unrecognized next-header type
	ParamUnknownOpt = 2 // unrecognized option
)

// ErrorFunc emits an ICMPv6 error about a received packet. orig is the
// offending packet from its IPv6 header; param is the type-specific
// 32-bit field (MTU for Packet Too Big, pointer for Param Problem).
type ErrorFunc func(kind int, code uint8, param uint32, orig *mbuf.Mbuf, rcvIf string)

// ResolveFunc maps an on-link next hop to its link-layer address via
// Neighbor Discovery.  If resolution is in progress the function
// queues pkt and returns ok=false; the ND module transmits it later.
type ResolveFunc func(ifp *netif.Interface, rt *route.Entry, nextHop inet.IP6, pkt *mbuf.Mbuf) (inet.LinkAddr, bool)

// Security hook results (§3.4 input processing).
type SecAction int

const (
	SecDrop     SecAction = iota // packet failed security processing
	SecContinue                  // AH verified: continue the header walk
	SecReinject                  // packet replaced (ESP): reprocess it
)

// SecInputFunc processes an AH or ESP header found at off. For
// SecReinject, Packet is the replacement datagram (decrypted transport
// content rebuilt under the original base header, or the tunneled
// inner datagram).
type SecInputFunc func(pkt *mbuf.Mbuf, hdr *Header, p uint8, off int) (SecAction, *mbuf.Mbuf)

// SecOutputFunc is the ipsec_output_policy() call (§3.3), invoked by
// Output "immediately before IP fragmentation is performed". hdr has
// final source and destination; payload is the fragmentable part
// beginning with first-next-header nh. It returns the (possibly
// wrapped) payload and its first next-header, or an error (EIPSEC).
// The hook may rewrite hdr.Dst (tunnel mode to a security gateway);
// the layer then re-routes toward the new destination.  sc, when
// non-nil, is the caller's held security verdict (a PCB's key.Cache):
// the hook validates it with one generation compare and refills it
// after a full resolution, so steady-state sends skip the SA table.
type SecOutputFunc func(hdr *Header, payload *mbuf.Mbuf, nh uint8, socket any, sc *key.Cache) (*mbuf.Mbuf, uint8, error)

type fragKey struct {
	src, dst inet.IP6
	id       uint32
}

// OutputOpts carries per-packet options for Output.
type OutputOpts struct {
	HopLimit uint8  // 0 means layer default
	FlowInfo uint32 // priority + flow label
	// Extension headers to attach.
	HopOpts      []Option   // hop-by-hop options
	DstOptsList  []Option   // destination options
	RoutingAddrs []inet.IP6 // type-0 source route
	// RoutingStrict is the strict/loose bit map for RoutingAddrs: bit
	// i set means hop i must be an on-link neighbor (§4.1).
	RoutingStrict uint32
	// NoFrag makes over-MTU sends fail with ErrMsgSize instead of
	// fragmenting (TCP segments to the PMTU instead).
	NoFrag bool
	// Socket is the back pointer the security output policy examines
	// (the NRL addition to the packet header, §3.3).
	Socket any
	// IfName forces the outgoing interface (link-local / multicast
	// destinations that carry no route).
	IfName string
	// NoSecurity bypasses the security output hook. Reserved for key
	// management traffic (§6.3 describes the planned privileged
	// bypass); normal sockets cannot set it.
	NoSecurity bool
	// UnspecSource sends from the unspecified address instead of
	// selecting a source (duplicate address detection probes).
	UnspecSource bool
	// RouteCache, when non-nil, is the caller's held route (BSD's
	// ro->ro_rt): Output validates it with one generation compare
	// before falling back to ensureHostRoute's lookup-and-clone.
	RouteCache *route.Cache
	// SecCache, when non-nil, is the caller's held security verdict
	// (a PCB's key.Cache, same discipline as RouteCache): the security
	// output hook resolves policy and associations through it instead
	// of scanning the SA table per packet.
	SecCache *key.Cache
}

// Layer is the IPv6 protocol instance of one stack.
type Layer struct {
	mu     sync.RWMutex
	routes *route.Table
	ifaces map[string]*netif.Interface
	lo     *netif.Interface
	protos map[uint8]proto.TransportInput
	ctls   map[uint8]proto.CtlInput
	frags  *reasm.Queue[fragKey]
	fragID uint32
	groups map[string]map[inet.IP6]int // multicast memberships per iface
	local  atomic.Pointer[localSet]    // cached unicast-destination set
	fwd    route.ShardedCache          // forwarding fast path's held routes

	// FastPath enables the bypass around pre-parsing for packets with
	// no optional headers — the optimization §2.2 and §7 say is
	// planned.  Off by default, as in the paper's alpha.
	FastPath bool
	// Forwarding enables router behavior.
	Forwarding bool
	// DefaultHopLimit is used when OutputOpts.HopLimit is 0.
	DefaultHopLimit uint8

	// Error is the ICMPv6 error sink, registered by icmp6.
	Error ErrorFunc
	// Resolve is the neighbor-discovery resolver, registered by icmp6.
	Resolve ResolveFunc
	// SecIn / SecOut are the IP security hooks, registered by ipsec.
	SecIn  SecInputFunc
	SecOut SecOutputFunc
	// OnGroupChange observes multicast join/leave so ICMPv6 can send
	// group membership messages (§4.1).
	OnGroupChange func(ifName string, group inet.IP6, joined bool)

	// Drops is the stack-wide drop observability sink (reason counters
	// + flight recorder), shared with the other protocol modules by
	// the stack assembly. nil (standalone layers) counts nothing.
	Drops *stat.Recorder

	Stats Stats
}

// Reassembly quota defaults: a datagram ceiling (BSD's
// ip_maxfragpackets descendant) and a per-source share of it, so one
// spoofed source cannot own the whole queue.
const (
	DefaultReasmMaxDatagrams = 256
	DefaultReasmMaxPerSource = 16
)

// NewLayer creates an IPv6 layer over the routing table.
func NewLayer(rt *route.Table) *Layer {
	l := &Layer{
		routes:          rt,
		ifaces:          make(map[string]*netif.Interface),
		protos:          make(map[uint8]proto.TransportInput),
		ctls:            make(map[uint8]proto.CtlInput),
		frags:           reasm.NewQueue[fragKey](30 * time.Second),
		groups:          make(map[string]map[inet.IP6]int),
		DefaultHopLimit: 64,
	}
	l.frags.MaxDatagrams = DefaultReasmMaxDatagrams
	l.frags.MaxPerSource = DefaultReasmMaxPerSource
	l.frags.SourceOf = func(k fragKey) any { return k.src }
	l.frags.OnEvict = func(k fragKey, _ *reasm.Buffer) {
		l.Stats.ReasmOverflow.Inc()
		l.Stats.ReasmFails.Inc()
		l.Drops.DropNote(stat.RV6ReasmOverflow, k.src.String()+">"+k.dst.String())
	}
	return l
}

// SetReasmLimits tunes the reassembly quotas (0 leaves a value
// unchanged; negative disables that quota).
func (l *Layer) SetReasmLimits(maxDatagrams, maxPerSource int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if maxDatagrams != 0 {
		l.frags.MaxDatagrams = max(maxDatagrams, 0)
	}
	if maxPerSource != 0 {
		l.frags.MaxPerSource = max(maxPerSource, 0)
	}
}

// ReasmLimits reports the effective reassembly quotas.
func (l *Layer) ReasmLimits() (maxDatagrams, maxPerSource int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frags.MaxDatagrams, l.frags.MaxPerSource
}

// FragQueueLen returns the number of in-progress reassemblies — the
// occupancy half of the reasm limit surface.
func (l *Layer) FragQueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frags.Len()
}

// AddInterface registers an interface. The first loopback becomes the
// local-delivery path. Non-loopback interfaces join the all-nodes
// link-layer multicast group — every IPv6 node is implicitly a member
// (§4.2.2: routers advertise to the all-nodes multicast address).
func (l *Layer) AddInterface(ifp *netif.Interface) {
	l.mu.Lock()
	l.ifaces[ifp.Name] = ifp
	if ifp.Loopback() && l.lo == nil {
		l.lo = ifp
	}
	l.mu.Unlock()
	netif.BumpAddrGen()
	if !ifp.Loopback() {
		ifp.JoinGroup(inet.EthernetMulticast(inet.AllNodes))
	}
}

// Interface returns a registered interface by name.
func (l *Layer) Interface(name string) *netif.Interface {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ifaces[name]
}

// Interfaces returns all registered interfaces.
func (l *Layer) Interfaces() []*netif.Interface {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*netif.Interface, 0, len(l.ifaces))
	for _, ifp := range l.ifaces {
		out = append(out, ifp)
	}
	return out
}

// Register installs a transport protocol in the protocol switch.
func (l *Layer) Register(p uint8, in proto.TransportInput, ctl proto.CtlInput) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if in != nil {
		l.protos[p] = in
	}
	if ctl != nil {
		l.ctls[p] = ctl
	}
}

// Ctl looks up a transport's control-input entry (used by icmp6 to
// deliver errors upward).
func (l *Layer) Ctl(p uint8) proto.CtlInput {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ctls[p]
}

// Routes returns the routing table.
func (l *Layer) Routes() *route.Table { return l.routes }

//
// Multicast group membership.
//

// JoinGroup joins an IPv6 multicast group on an interface, programming
// the link-layer filter and notifying the group-membership protocol.
func (l *Layer) JoinGroup(ifName string, group inet.IP6) error {
	l.mu.Lock()
	ifp := l.ifaces[ifName]
	if ifp == nil {
		l.mu.Unlock()
		return fmt.Errorf("ipv6: no interface %q", ifName)
	}
	g := l.groups[ifName]
	if g == nil {
		g = make(map[inet.IP6]int)
		l.groups[ifName] = g
	}
	g[group]++
	first := g[group] == 1
	cb := l.OnGroupChange
	l.mu.Unlock()
	if first {
		ifp.JoinGroup(inet.EthernetMulticast(group))
		if cb != nil {
			cb(ifName, group, true)
		}
	}
	return nil
}

// LeaveGroup drops one membership reference.
func (l *Layer) LeaveGroup(ifName string, group inet.IP6) {
	l.mu.Lock()
	ifp := l.ifaces[ifName]
	g := l.groups[ifName]
	last := false
	if g != nil && g[group] > 0 {
		g[group]--
		if g[group] == 0 {
			delete(g, group)
			last = true
		}
	}
	cb := l.OnGroupChange
	l.mu.Unlock()
	if last && ifp != nil {
		ifp.LeaveGroup(inet.EthernetMulticast(group))
		if cb != nil {
			cb(ifName, group, false)
		}
	}
}

// InGroup reports whether the node is a member of group on the
// interface (all-nodes is an implicit membership).
func (l *Layer) InGroup(ifName string, group inet.IP6) bool {
	if group == inet.AllNodes {
		return true
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if g := l.groups[ifName]; g != nil {
		return g[group] > 0
	}
	return false
}

// Groups lists the groups joined on an interface.
func (l *Layer) Groups(ifName string) []inet.IP6 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []inet.IP6
	for g := range l.groups[ifName] {
		out = append(out, g)
	}
	return out
}

// isLocal reports whether dst is one of this node's unicast addresses.
func (l *Layer) isLocal(dst inet.IP6) bool {
	if dst.IsLoopback() {
		return true
	}
	gen := netif.AddrGen()
	c := l.local.Load()
	if c == nil || c.gen != gen {
		c = l.rebuildLocal(gen)
	}
	_, ok := c.set[dst]
	return ok
}

// localSet is a generation-stamped flat view of every configured
// (non-duplicated) unicast address, so the per-packet destination
// check is one atomic load and a map probe instead of an interface
// walk under locks.  Address or membership changes bump
// netif.AddrGen and the next packet rebuilds.
type localSet struct {
	gen uint64
	set map[inet.IP6]struct{}
}

func (l *Layer) rebuildLocal(gen uint64) *localSet {
	set := make(map[inet.IP6]struct{})
	l.mu.RLock()
	for _, ifp := range l.ifaces {
		for _, a := range ifp.Addrs6() {
			if !a.Duplicated {
				set[a.Addr] = struct{}{}
			}
		}
	}
	l.mu.RUnlock()
	c := &localSet{gen: gen, set: set}
	l.local.Store(c)
	return c
}

// SourceFor selects a source address for reaching dst, implementing
// scope matching: link-local destinations get link-local sources,
// global destinations prefer non-deprecated addresses sharing the
// longest prefix (address lifetimes steer traffic away from
// deprecated prefixes during renumbering, §4.2.2).
func (l *Layer) SourceFor(dst inet.IP6, ifp *netif.Interface) (inet.IP6, bool) {
	now := l.routes.Now()
	wantLinkLocal := dst.IsLinkLocal() || dst.IsLinkLocalMulticast()
	var best inet.IP6
	bestScore := -1
	consider := func(cand netif.Addr6) {
		if !cand.Usable(now) {
			return
		}
		isLL := cand.Addr.IsLinkLocal()
		if wantLinkLocal != isLL {
			return
		}
		score := 0
		for i := 0; i < 128; i++ {
			if !inet.MatchPrefix(cand.Addr, dst, i+1) {
				break
			}
			score = i + 1
		}
		score *= 2
		if !cand.Deprecated(now) {
			score++ // prefer preferred addresses at equal prefix match
		}
		if score > bestScore {
			bestScore, best = score, cand.Addr
		}
	}
	if ifp != nil {
		for _, a := range ifp.Addrs6() {
			consider(a)
		}
	} else {
		l.mu.Lock()
		ifaces := make([]*netif.Interface, 0, len(l.ifaces))
		for _, i := range l.ifaces {
			ifaces = append(ifaces, i)
		}
		l.mu.Unlock()
		for _, i := range ifaces {
			for _, a := range i.Addrs6() {
				consider(a)
			}
		}
	}
	if bestScore < 0 {
		return inet.IP6{}, false
	}
	return best, true
}

// ensureHostRoute returns a host route for dst so there is a place to
// store the path MTU: "Host routes are automatically created for IP
// communications originating on the local machine" (§2.2).
func (l *Layer) ensureHostRoute(dst inet.IP6) (*route.Entry, bool) {
	rt, ok := l.routes.Lookup(inet.AFInet6, dst[:])
	if !ok {
		return nil, false
	}
	var host bool
	var gw any
	var flags, mtu int
	l.routes.View(func() {
		host = rt.Host()
		gw, flags, mtu = rt.Gateway, rt.Flags, rt.MTU
	})
	if host {
		return rt, true
	}
	clone := &route.Entry{
		Family:  inet.AFInet6,
		Dst:     append([]byte(nil), dst[:]...),
		Plen:    128,
		Gateway: gw,
		Flags:   route.FlagUp | route.FlagHost | route.FlagDynamic | (flags & (route.FlagGateway | route.FlagLLInfo)),
		IfName:  rt.IfName,
		MTU:     mtu,
	}
	l.routes.Add(clone)
	return clone, true
}

// entryIfName reads a route entry's interface name under the table
// lock.
func (l *Layer) entryIfName(rt *route.Entry) string {
	var n string
	l.routes.View(func() { n = rt.IfName })
	return n
}

// entryFlags reads a route entry's flags under the table lock.
func (l *Layer) entryFlags(rt *route.Entry) int {
	var f int
	l.routes.View(func() { f = rt.Flags })
	return f
}

// entryMTU reads a route entry's MTU under the table lock.
func (l *Layer) entryMTU(rt *route.Entry) int {
	var m int
	l.routes.View(func() { m = rt.MTU })
	return m
}

func (l *Layer) nextFragID() uint32 {
	l.mu.Lock()
	l.fragID++
	id := l.fragID
	l.mu.Unlock()
	return id
}

//
// Output path (ipv6_output).
//

// extChain is the marshalled extension headers plus patch bookkeeping.
type extChain struct {
	unfrag      []byte // hop-by-hop + routing: stays with every fragment
	unfragPatch int    // offset in unfrag of the next-header byte to patch, -1 if none
	firstNH     uint8  // next-header value for the base header
	unfragNH    uint8  // next-header the unfrag part currently points to
}

// buildExt assembles the extension chain for opts, with payloadNH the
// protocol of the payload. Destination options join the fragmentable
// part and are returned separately (prepended to the payload).
func buildExt(opts *OutputOpts, payloadNH uint8) (extChain, []byte, uint8) {
	c := extChain{firstNH: payloadNH, unfragPatch: -1, unfragNH: payloadNH}
	fragNH := payloadNH
	var fragPart []byte
	if len(opts.DstOptsList) > 0 {
		fragPart = MarshalOptions(payloadNH, opts.DstOptsList)
		fragNH = proto.DstOpts
	}
	// Unfragmentable, built outside-in: hop-by-hop then routing.
	next := fragNH
	var routing []byte
	if len(opts.RoutingAddrs) > 0 {
		rh := &RoutingHeader{NextHdr: next, SegLeft: len(opts.RoutingAddrs), Addrs: opts.RoutingAddrs, StrictBits: opts.RoutingStrict}
		routing = rh.Marshal(nil)
		next = proto.Routing
	}
	var hbh []byte
	if len(opts.HopOpts) > 0 {
		hbh = MarshalOptions(next, opts.HopOpts)
		next = proto.HopByHop
	}
	c.unfrag = append(hbh, routing...)
	c.firstNH = next
	if len(c.unfrag) > 0 {
		// The next-header byte of the *last* unfrag header points at
		// the fragmentable part; remember it for fragment patching.
		if len(routing) > 0 {
			c.unfragPatch = len(hbh)
		} else {
			c.unfragPatch = 0
		}
		c.unfragNH = fragNH
	}
	return c, fragPart, fragNH
}

// Output sends an upper-layer packet: select source, find (or create)
// the host route, attach extension headers, run the security output
// policy, fragment end-to-end if needed, resolve the neighbor, and
// transmit (§2.2, §3.3).
//
// Output always consumes pkt, like BSD's ip_output: on success
// ownership passes to the wire (or the neighbor queue), and every
// error path frees it before returning.  Callers must not touch pkt
// after calling Output, and must not free it on error.
func (l *Layer) Output(pkt *mbuf.Mbuf, src, dst inet.IP6, nh uint8, opts OutputOpts) error {
	l.Stats.OutRequests.Inc()
	hops := opts.HopLimit
	if hops == 0 {
		hops = l.DefaultHopLimit
	}
	if dst.IsMulticast() && opts.HopLimit == 0 {
		hops = 1 // link-local scope by default
	}

	var ifp *netif.Interface
	var rt *route.Entry
	var loopLocal bool
	switch {
	case l.isLocal(dst):
		loopLocal = true
	case dst.IsMulticast(), opts.IfName != "":
		name := opts.IfName
		if name == "" {
			// Multicast with no pinned interface: use any non-loopback.
			l.mu.Lock()
			for _, cand := range l.ifaces {
				if !cand.Loopback() && cand.Up() {
					name = cand.Name
					break
				}
			}
			l.mu.Unlock()
		}
		ifp = l.Interface(name)
		if ifp == nil {
			l.Stats.OutNoRoute.Inc()
			pkt.Free()
			return ErrNoRoute
		}
		if !dst.IsMulticast() {
			// Unicast pinned to an interface still needs a neighbor
			// route for ND.  For link-local destinations the pin is
			// authoritative: a host route cloned from another
			// interface's fe80::/64 (one shared prefix route per
			// stack) must be re-pinned here, or resolution would run
			// on the wrong link.
			var ok bool
			rt, ok = l.ensureHostRoute(dst)
			if ok && dst.IsLinkLocal() && l.entryIfName(rt) != ifp.Name {
				ok = false
			}
			if !ok {
				rt = l.routes.Add(&route.Entry{
					Family: inet.AFInet6, Dst: append([]byte(nil), dst[:]...), Plen: 128,
					Flags: route.FlagUp | route.FlagHost | route.FlagLLInfo | route.FlagDynamic, IfName: ifp.Name,
				})
			}
		}
	default:
		var hit bool
		rt, hit = l.routes.CacheGet(opts.RouteCache, inet.AFInet6, dst[:])
		if !hit {
			var ok bool
			rt, ok = l.ensureHostRoute(dst)
			if !ok {
				l.Stats.OutNoRoute.Inc()
				pkt.Free()
				return ErrNoRoute
			}
			l.routes.CacheFill(opts.RouteCache, inet.AFInet6, dst[:], rt)
		}
		if l.entryFlags(rt)&route.FlagReject != 0 {
			l.Stats.OutNoRoute.Inc()
			pkt.Free()
			return ErrReject
		}
		ifp = l.Interface(rt.IfName)
		if ifp == nil {
			l.Stats.OutNoRoute.Inc()
			pkt.Free()
			return ErrNoRoute
		}
	}

	if src.IsUnspecified() && !opts.UnspecSource {
		if loopLocal {
			src = dst
		} else {
			s, ok := l.SourceFor(dst, ifp)
			if !ok {
				pkt.Free()
				return ErrNoSrc
			}
			src = s
		}
	}

	// Assemble extension headers.
	chain, fragPart, fragNH := buildExt(&opts, nh)
	if len(fragPart) > 0 {
		pkt.Prepend(fragPart)
	}

	hdr := &Header{FlowInfo: opts.FlowInfo, NextHdr: chain.firstNH, HopLimit: hops, Src: src, Dst: dst}

	// Security output processing, "immediately before IP fragmentation
	// is performed" (§3.3). The hook wraps the fragmentable part.
	effFragNH := fragNH
	secWrapped := false
	if l.SecOut != nil && !opts.NoSecurity {
		wrapped, newNH, err := l.SecOut(hdr, pkt, fragNH, opts.Socket, opts.SecCache)
		if err != nil {
			l.Stats.OutDrops.Inc()
			pkt.Free()
			return err
		}
		secWrapped = newNH != fragNH
		pkt = wrapped
		effFragNH = newNH
		if len(chain.unfrag) == 0 {
			hdr.NextHdr = newNH
		} else {
			chain.unfrag[chain.unfragPatch] = newNH
			chain.unfragNH = newNH
		}
		if hdr.Dst != dst {
			// Tunnel mode readdressed the outer header to a security
			// gateway: route toward it instead.
			dst = hdr.Dst
			loopLocal = l.isLocal(dst)
			if !loopLocal && !dst.IsMulticast() {
				var ok bool
				rt, ok = l.ensureHostRoute(dst)
				if !ok {
					l.Stats.OutNoRoute.Inc()
					pkt.Free()
					return ErrNoRoute
				}
				ifp = l.Interface(rt.IfName)
				if ifp == nil {
					l.Stats.OutNoRoute.Inc()
					pkt.Free()
					return ErrNoRoute
				}
			}
		}
	} else if len(chain.unfrag) == 0 {
		hdr.NextHdr = effFragNH
	}

	mtu := MinMTU
	if loopLocal {
		l.mu.Lock()
		if l.lo != nil {
			mtu = l.lo.MTU()
		}
		l.mu.Unlock()
	} else {
		mtu = ifp.MTU()
		if rt != nil {
			if rtMTU := l.entryMTU(rt); rtMTU != 0 && rtMTU < mtu {
				mtu = rtMTU
			}
		}
	}

	total := HeaderLen + len(chain.unfrag) + pkt.Len()
	if total-HeaderLen > 65535 {
		// The payload length field is 16 bits; without jumbograms
		// nothing larger is expressible (even reassembled).
		pkt.Free()
		return ErrMsgSize
	}
	// A GSO super-segment sails past the MTU gate whole: the netif
	// boundary splits it into MSS-sized wire frames.  Extension
	// headers or a security wrap would sit between the fixed headers
	// the splitter replicates and the payload it chops, so either one
	// demotes the packet to the ordinary paths below.
	gso := pkt.Hdr().GSO != nil && !secWrapped && len(chain.unfrag) == 0
	if secWrapped {
		pkt.Hdr().GSO = nil
	}
	if gso {
		// Record the resolved path MTU (route-clamped, so PMTU
		// discovery steers the split size even when the super-segment
		// fits the first hop).
		pkt.Hdr().GSO.PathMTU = mtu
	}
	if total <= mtu || gso {
		hdr.PayloadLen = len(chain.unfrag) + pkt.Len()
		if len(chain.unfrag) > 0 {
			pkt.Prepend(chain.unfrag)
		}
		pkt.Prepend(hdr.Marshal(nil))
		if loopLocal {
			return l.loop(pkt)
		}
		return l.transmit(ifp, rt, dst, pkt)
	}
	if opts.NoFrag && !secWrapped {
		pkt.Free()
		return ErrMsgSize
	}
	// End-to-end fragmentation (§2.2: IPv6 has no intermediate
	// fragmentation; sources fragment when even the path MTU is too
	// small, e.g. large hop-by-hop option loads).  Security-wrapped
	// packets may fragment even for TCP: AH/ESP are applied
	// "immediately before any fragmentation" (§3.3), and the transport
	// cannot see the wrapping overhead.
	return l.fragmentOut(ifp, rt, hdr, chain, effFragNH, pkt, mtu, loopLocal)
}

func (l *Layer) fragmentOut(ifp *netif.Interface, rt *route.Entry, hdr *Header, chain extChain, fragNH uint8, pkt *mbuf.Mbuf, mtu int, loopLocal bool) error {
	id := l.nextFragID()
	// Point the chain at the fragment header.
	if len(chain.unfrag) > 0 {
		chain.unfrag[chain.unfragPatch] = proto.Fragment
	} else {
		hdr.NextHdr = proto.Fragment
	}
	chunk := (mtu - HeaderLen - len(chain.unfrag) - FragHeaderLen) &^ 7
	if chunk <= 0 {
		pkt.Free()
		return ErrMsgSize
	}
	payload := pkt.Bytes()
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		fh := FragHeader{NextHdr: fragNH, Off: off, More: end < len(payload), ID: id}
		// Each fragment gets its own pooled buffer: the parent is
		// freed (and its slab recycled) right after this loop, so the
		// in-flight fragments must not alias its bytes.
		fm := mbuf.Get(end - off)
		copy(fm.Bytes(), payload[off:end])
		fm.Hdr().Flags |= mbuf.MFrag
		fm.Prepend(fh.Marshal(nil))
		if len(chain.unfrag) > 0 {
			fm.Prepend(chain.unfrag)
		}
		fhdr := *hdr
		fhdr.PayloadLen = fm.Len()
		fm.Prepend(fhdr.Marshal(nil))
		l.Stats.OutFrags.Inc()
		var err error
		if loopLocal {
			err = l.loop(fm)
		} else {
			err = l.transmit(ifp, rt, hdr.Dst, fm)
		}
		if err != nil {
			pkt.Free()
			return err
		}
	}
	pkt.Free()
	return nil
}

// loop delivers a packet to ourselves through loopback.  Like
// transmit, it consumes pkt even on error.
func (l *Layer) loop(pkt *mbuf.Mbuf) error {
	l.mu.RLock()
	lo := l.lo
	l.mu.RUnlock()
	if lo == nil {
		pkt.Free()
		return ErrNoRoute
	}
	if err := lo.Output(inet.LinkAddr{}, netif.EtherTypeIPv6, pkt); err != nil {
		pkt.Free()
		return err
	}
	return nil
}

// transmit resolves the link-layer destination and hands the packet to
// the interface.  It consumes pkt on every path: success passes
// ownership to the device (or queues on the neighbor entry awaiting
// resolution); failure frees it — the interface's Output contract
// leaves an errored packet with the caller, and here the buck stops.
func (l *Layer) transmit(ifp *netif.Interface, rt *route.Entry, dst inet.IP6, pkt *mbuf.Mbuf) error {
	out := func(mac inet.LinkAddr) error {
		if err := ifp.Output(mac, netif.EtherTypeIPv6, pkt); err != nil {
			pkt.Free()
			return err
		}
		return nil
	}
	if ifp.Flags()&netif.FlagTunnel != 0 {
		// Point-to-point encapsulating device: no link addressing, no
		// neighbor discovery — the device's output closure wraps the
		// packet and re-enters the outer IP layer.
		return out(inet.LinkAddr{})
	}
	if dst.IsMulticast() {
		return out(inet.EthernetMulticast(dst))
	}
	nextHop := dst
	var flags int
	var gw any
	if rt != nil {
		l.routes.View(func() { flags, gw = rt.Flags, rt.Gateway })
	}
	if rt != nil && flags&route.FlagGateway != 0 {
		gwAddr, ok := gw.(inet.IP6)
		if !ok {
			pkt.Free()
			return ErrNoRoute
		}
		nextHop = gwAddr
		grt, ok := l.routes.Lookup(inet.AFInet6, gwAddr[:])
		if !ok {
			l.Stats.OutNoRoute.Inc()
			pkt.Free()
			return ErrNoRoute
		}
		rt = grt
		l.routes.View(func() { flags, gw = rt.Flags, rt.Gateway })
	}
	if rt != nil && flags&route.FlagReject != 0 {
		l.Stats.OutNoRoute.Inc()
		pkt.Free()
		return ErrReject
	}
	// Fast case: the neighbor route already holds a link-layer address.
	if rt != nil {
		if mac, ok := gw.(inet.LinkAddr); ok && flags&route.FlagLLInfo != 0 && l.Resolve == nil {
			return out(mac)
		}
	}
	if l.Resolve == nil {
		pkt.Free()
		return ErrNoRoute
	}
	mac, ok := l.Resolve(ifp, rt, nextHop, pkt)
	if !ok {
		return nil // queued on the neighbor entry
	}
	return out(mac)
}

//
// Input path (ipv6_input / preparse, §2.2).
//

const maxReinject = 8 // bound on reassembly/decryption reprocessing

// Input is the per-packet entry from the network interfaces.
func (l *Layer) Input(ifp *netif.Interface, pkt *mbuf.Mbuf) {
	l.Stats.InReceives.Inc()
	l.input(ifp, pkt, 0)
}

func (l *Layer) input(ifp *netif.Interface, pkt *mbuf.Mbuf, depth int) {
	if depth > maxReinject {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV6ReinjectLoop, pkt.Bytes())
		pkt.Free()
		return
	}
	b := pkt.PullUp(HeaderLen)
	if b == nil {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV6BadHeader, pkt.Bytes())
		pkt.Free()
		return
	}
	h, err := Parse(b)
	if err != nil {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV6BadHeader, b)
		pkt.Free()
		return
	}
	if pkt.Len() < HeaderLen+h.PayloadLen {
		l.Stats.InTruncated.Inc()
		l.Drops.DropPkt(stat.RV6Truncated, b)
		pkt.Free()
		return
	}
	if pkt.Len() > HeaderLen+h.PayloadLen {
		pkt.Adj(HeaderLen + h.PayloadLen - pkt.Len()) // trim link padding
	}

	// Destination check: one of ours (unicast) or a group we belong to.
	local := l.isLocal(h.Dst)
	if !local && h.Dst.IsMulticast() {
		// All-nodes is implicit; solicited-node and other groups are
		// joined explicitly (ND joins one per configured address,
		// §4.3).  Forwarding routers in all-multicast mode see every
		// group's traffic so membership Reports reach them (§4.1).
		local = l.InGroup(ifp.Name, h.Dst) ||
			(l.Forwarding && ifp.Flags()&netif.FlagAllMulti != 0)
	}
	if !local {
		if l.Forwarding && !h.Dst.IsMulticast() {
			l.forward(ifp, h, pkt)
			return
		}
		l.Stats.InAddrErrors.Inc()
		l.Drops.DropPkt(stat.RV6NotForUs, b)
		pkt.Free()
		return
	}
	l.process(ifp, h, pkt, depth)
}

// process runs the pre-parse and the header walk for a locally
// destined packet.
func (l *Layer) process(ifp *netif.Interface, h *Header, pkt *mbuf.Mbuf, depth int) {
	if l.FastPath && !IsExt(h.NextHdr) {
		l.Stats.FastPathHits.Inc()
		l.dispatch(ifp, h, pkt, h.NextHdr, HeaderLen, depth)
		return
	}
	b := pkt.Bytes()
	l.Stats.PreparseRuns.Inc()
	info, err := Preparse(b, false)
	if err != nil {
		if _, isOptErr := err.(*OptionError); !isOptErr {
			l.Stats.InHdrErrors.Inc()
			l.Drops.DropPkt(stat.RV6BadExtChain, b)
			if l.Error != nil && info != nil && info.Truncated {
				l.Error(ErrParamProblem, ParamErrHeader, uint32(info.FinalOff), pkt, ifp.Name)
			}
			pkt.Free() // the error hook quoted its copy
			return
		}
	}

	for i, rec := range info.Ext {
		switch rec.Proto {
		case proto.HopByHop:
			if i != 0 {
				l.Drops.DropPkt(stat.RV6BadExtChain, b)
				l.paramProblem(ifp, pkt, ParamErrHeader, uint32(rec.Offset))
				pkt.Free()
				return
			}
			if !l.processOptions(ifp, h, pkt, rec) {
				return
			}
		case proto.DstOpts:
			if !l.processOptions(ifp, h, pkt, rec) {
				return
			}
		case proto.Routing:
			done, cont := l.processRouting(ifp, h, pkt, rec)
			if done {
				return
			}
			_ = cont
		case proto.Fragment:
			l.processFragment(ifp, h, pkt, rec, depth)
			return
		case proto.AH:
			if l.SecIn == nil {
				l.Stats.InUnknownProt.Inc()
				l.Drops.DropPkt(stat.RV6UnknownProt, b)
				l.paramProblem(ifp, pkt, ParamUnknownNH, uint32(rec.Offset))
				pkt.Free()
				return
			}
			action, _ := l.SecIn(pkt, h, proto.AH, rec.Offset)
			if action == SecDrop {
				pkt.Free() // ipsec recorded the drop; the packet ends here
				return
			}
		}
	}

	l.dispatch(ifp, h, pkt, info.Final, info.FinalOff, depth)
}

// dispatch hands the upper-layer data to the protocol switch.
func (l *Layer) dispatch(ifp *netif.Interface, h *Header, pkt *mbuf.Mbuf, final uint8, off int, depth int) {
	switch final {
	case proto.NoNext:
		pkt.Free() // nothing follows the headers; terminal by definition
		return
	case proto.ESP:
		if l.SecIn == nil {
			l.Stats.InUnknownProt.Inc()
			l.Drops.DropPkt(stat.RV6UnknownProt, pkt.Bytes())
			l.paramProblem(ifp, pkt, ParamUnknownNH, uint32(off))
			pkt.Free()
			return
		}
		action, replacement := l.SecIn(pkt, h, proto.ESP, off)
		if action != SecReinject || replacement == nil {
			pkt.Free()
			return
		}
		// Decrypted transport content or tunneled inner datagram:
		// reprocess from the top ("After security input processing is
		// completed, the normal input processing resumes", §3.4).  The
		// replacement owns fresh bytes; the ciphertext carrier is done.
		pkt.Free()
		l.input(ifp, replacement, depth+1)
		return
	}
	meta := &proto.Meta{
		Family: inet.AFInet6,
		Src6:   h.Src, Dst6: h.Dst,
		Proto: final, Hops: h.HopLimit, FlowInfo: h.FlowInfo, RcvIf: ifp.Name,
	}
	l.mu.RLock()
	in := l.protos[final]
	l.mu.RUnlock()
	if in == nil {
		l.Stats.InUnknownProt.Inc()
		l.Drops.DropPkt(stat.RV6UnknownProt, pkt.Bytes())
		l.paramProblem(ifp, pkt, ParamUnknownNH, uint32(off))
		pkt.Free()
		return
	}
	l.Stats.InDelivers.Inc()
	pkt.Adj(off)
	in(pkt, meta)
}

// processOptions parses a hop-by-hop or destination options header and
// applies the unknown-option action bits.  A false return is terminal
// in every caller, so the failure paths free the packet here (the
// param-problem hook quotes a copy before that).
func (l *Layer) processOptions(ifp *netif.Interface, h *Header, pkt *mbuf.Mbuf, rec HeaderRec) bool {
	b := pkt.Bytes()
	body := b[rec.Offset+2 : rec.Offset+rec.Len]
	_, err := ParseOptions(body, nil)
	if err == nil {
		return true
	}
	l.Stats.InOptErrors.Inc()
	if oe, ok := err.(*OptionError); ok {
		l.Drops.DropPkt(stat.RV6OptionDrop, b)
		switch oe.Action {
		case OptActDiscard:
		case OptActDiscardICMP:
			l.paramProblem(ifp, pkt, ParamUnknownOpt, uint32(rec.Offset+oe.Offset))
		case OptActDiscardMcst:
			if !h.Dst.IsMulticast() {
				l.paramProblem(ifp, pkt, ParamUnknownOpt, uint32(rec.Offset+oe.Offset))
			}
		}
		pkt.Free()
		return false
	}
	l.Drops.DropPkt(stat.RV6BadExtChain, b)
	l.paramProblem(ifp, pkt, ParamErrHeader, uint32(rec.Offset))
	pkt.Free()
	return false
}

// processRouting handles a type-0 routing header addressed to us:
// swap in the next hop and re-emit (§4.1 mentions strict-source-route
// errors; we reject strict hops that are not neighbors).
func (l *Layer) processRouting(ifp *netif.Interface, h *Header, pkt *mbuf.Mbuf, rec HeaderRec) (done, cont bool) {
	l.Stats.RouteHdrSeen.Inc()
	b := pkt.Bytes()
	rh, err := ParseRouting(b[rec.Offset : rec.Offset+rec.Len])
	if err != nil {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV6RouteHdrErr, b)
		l.paramProblem(ifp, pkt, ParamErrHeader, uint32(rec.Offset))
		pkt.Free()
		return true, false
	}
	if rh.SegLeft == 0 {
		return false, true // fully traversed; continue to the payload
	}
	i := len(rh.Addrs) - rh.SegLeft
	next := rh.Addrs[i]
	if next.IsMulticast() {
		l.Drops.DropPkt(stat.RV6RouteHdrErr, b)
		l.paramProblem(ifp, pkt, ParamErrHeader, uint32(rec.Offset))
		pkt.Free()
		return true, false
	}
	// Swap dst and the current segment, decrement segments-left.
	segOff := rec.Offset + 8 + 16*i
	copy(b[segOff:segOff+16], h.Dst[:])
	copy(b[24:40], next[:])
	b[rec.Offset+3] = byte(rh.SegLeft - 1)
	if b[7] <= 1 {
		l.Drops.DropPkt(stat.RV6HopLimit, b)
		l.sendErr(ErrTimeExceeded, 0, 0, pkt, ifp.Name)
		pkt.Free()
		return true, false
	}
	b[7]--
	// Re-route toward the new destination.
	rt, ok := l.ensureHostRoute(next)
	if !ok {
		l.Drops.DropPkt(stat.RV6NoRoute, b)
		l.sendErr(ErrDstUnreach, 0, 0, pkt, ifp.Name)
		pkt.Free()
		return true, false
	}
	// Strict hops must be on-link neighbors: a set strict bit with a
	// next hop reachable only through a gateway is the "errors with
	// strict source routing" case of §4.1 (Unreachable, not-a-neighbor).
	if rh.StrictBits&(1<<uint(i)) != 0 && l.entryFlags(rt)&route.FlagGateway != 0 {
		l.Drops.DropPkt(stat.RV6RouteHdrErr, b)
		l.sendErr(ErrDstUnreach, 2 /* not a neighbor */, 0, pkt, ifp.Name)
		pkt.Free()
		return true, false
	}
	oifp := l.Interface(rt.IfName)
	if oifp == nil {
		l.Stats.OutNoRoute.Inc()
		l.Drops.DropPkt(stat.RV6NoRoute, b)
		pkt.Free()
		return true, false
	}
	if err := l.transmit(oifp, rt, next, pkt); err != nil {
		l.Stats.OutDrops.Inc()
	}
	return true, false
}

// processFragment feeds the reassembly queue; a completed datagram is
// rebuilt and reprocessed.
func (l *Layer) processFragment(ifp *netif.Interface, h *Header, pkt *mbuf.Mbuf, rec HeaderRec, depth int) {
	l.Stats.FragsReceived.Inc()
	b := pkt.Bytes()
	fh, err := ParseFrag(b[rec.Offset : rec.Offset+rec.Len])
	if err != nil {
		l.Stats.InHdrErrors.Inc()
		l.Drops.DropPkt(stat.RV6BadHeader, b)
		pkt.Free()
		return
	}
	key := fragKey{src: h.Src, dst: h.Dst, id: fh.ID}
	frag := b[rec.Offset+FragHeaderLen:]
	l.mu.Lock()
	data, done, err := l.frags.Add(key, l.routes.Now(), fh.Off, fh.More, frag)
	if err == nil && !done && fh.Off == 0 {
		// Remember the first fragment so a reassembly timeout can quote
		// it in the Time Exceeded error (RFC 2460 §4.5).
		if buf := l.frags.Get(key); buf != nil && buf.Ctx == nil {
			ctx := b
			if len(ctx) > MinMTU {
				ctx = ctx[:MinMTU]
			}
			buf.Ctx = append([]byte(nil), ctx...)
			buf.CtxIf = ifp.Name
		}
	}
	l.mu.Unlock()
	if err != nil {
		l.Stats.ReasmFails.Inc()
		l.Drops.DropPkt(stat.RV6ReasmFail, b)
		pkt.Free()
		return
	}
	if !done {
		// The fragment's bytes were copied into the reassembly buffer;
		// this path is the packet's terminal consumer.
		pkt.Free()
		return
	}
	l.Stats.Reassembled.Inc()
	// Rebuild: headers up to (not including) the fragment header, the
	// preceding next-header pointer patched, then the assembled data.
	prefix := append([]byte(nil), b[:rec.Offset]...)
	if rec.Offset == HeaderLen {
		prefix[6] = fh.NextHdr
	} else {
		// The previous extension header's first byte is its
		// next-header field; find it by rescanning.
		info, _ := Preparse(b, false)
		for _, r := range info.Ext {
			if r.Offset+r.Len == rec.Offset {
				prefix[r.Offset] = fh.NextHdr
				break
			}
		}
	}
	plen := len(prefix) - HeaderLen + len(data)
	prefix[4], prefix[5] = byte(plen>>8), byte(plen)
	whole := mbuf.NewNoCopy(append(prefix, data...))
	whole.Hdr().Flags = pkt.Hdr().Flags &^ mbuf.MFrag
	whole.Hdr().RcvIf = ifp.Name
	pkt.Free() // rebuilt datagram owns fresh bytes
	l.input(ifp, whole, depth+1)
}

// forward is the router path: hop-limit decrement and retransmission.
// Note what is *not* here relative to IPv4's forward(): no checksum
// recomputation and no fragmentation — an over-MTU packet elicits
// Packet Too Big for the source's PMTU discovery (§2.1, §2.2).
func (l *Layer) forward(ifp *netif.Interface, h *Header, pkt *mbuf.Mbuf) {
	b := pkt.Bytes()
	if h.HopLimit <= 1 {
		l.Drops.DropPkt(stat.RV6HopLimit, b)
		l.sendErr(ErrTimeExceeded, 0, 0, pkt, ifp.Name)
		pkt.Free()
		return
	}
	// Routers process hop-by-hop options when present (§2.1).
	if h.NextHdr == proto.HopByHop {
		n := extHeaderLen(proto.HopByHop, b[HeaderLen:])
		if n < 0 || HeaderLen+n > len(b) {
			l.Stats.InHdrErrors.Inc()
			l.Drops.DropPkt(stat.RV6BadExtChain, b)
			pkt.Free()
			return
		}
		if !l.processOptions(ifp, h, pkt, HeaderRec{Proto: proto.HopByHop, Offset: HeaderLen, Len: n}) {
			return
		}
	}
	// Transit routing through the held-route shards: a repeat
	// destination costs one generation compare instead of a radix
	// walk; any structural table change (route delete, ND expiry)
	// bumps the generation and the next packet re-walks the radix.
	rc := l.fwd.For(h.Dst[:])
	rt, ok := l.routes.CacheGet(rc, inet.AFInet6, h.Dst[:])
	if ok {
		l.Stats.FwdCacheHits.Inc()
	} else if rt, ok = l.routes.Lookup(inet.AFInet6, h.Dst[:]); ok {
		l.routes.CacheFill(rc, inet.AFInet6, h.Dst[:], rt)
	}
	if !ok || l.entryFlags(rt)&route.FlagReject != 0 {
		l.Stats.OutNoRoute.Inc()
		l.Drops.DropPkt(stat.RV6NoRoute, b)
		l.sendErr(ErrDstUnreach, 0, 0, pkt, ifp.Name)
		pkt.Free()
		return
	}
	oifp := l.Interface(rt.IfName)
	if oifp == nil {
		l.Stats.OutNoRoute.Inc()
		l.Drops.DropPkt(stat.RV6NoRoute, b)
		pkt.Free()
		return
	}
	mtu := oifp.MTU()
	if pkt.Len() > mtu {
		l.Drops.DropPkt(stat.RV6TooBig, b)
		l.sendErr(ErrPacketTooBig, 0, uint32(mtu), pkt, ifp.Name)
		pkt.Free()
		return
	}
	b[7]-- // hop limit; no checksum to fix up afterwards
	l.Stats.Forwarded.Inc()
	if err := l.transmit(oifp, rt, h.Dst, pkt); err != nil {
		l.Stats.OutDrops.Inc()
	}
}

func (l *Layer) paramProblem(ifp *netif.Interface, pkt *mbuf.Mbuf, code uint8, ptr uint32) {
	l.sendErr(ErrParamProblem, code, ptr, pkt, ifp.Name)
}

func (l *Layer) sendErr(kind int, code uint8, param uint32, orig *mbuf.Mbuf, rcvIf string) {
	if l.Error != nil {
		l.Error(kind, code, param, orig, rcvIf)
	}
}

// SlowTimo drives periodic work (reassembly expiry). The paper's
// footnote said no Time Exceeded could be sent for reassembly timeouts
// because the offending packet was gone; we keep the first fragment on
// the buffer, so the error goes out with code 1 (fragment reassembly
// time exceeded) exactly when fragment zero arrived, per RFC 2460
// §4.5. Timeouts where the first fragment never showed stay silent —
// the error must quote the offender's header, which we never saw.
func (l *Layer) SlowTimo(now time.Time) {
	type timedOut struct {
		ctx   []byte
		rcvIf string
	}
	var errs []timedOut
	l.mu.Lock()
	n := l.frags.ExpireFunc(now, func(k fragKey, b *reasm.Buffer) {
		l.Drops.DropNote(stat.RV6ReasmTimeout, k.src.String()+">"+k.dst.String())
		if b.HasFirst() && b.Ctx != nil {
			errs = append(errs, timedOut{b.Ctx, b.CtxIf})
		}
	})
	l.Stats.ReasmFails.Add(uint64(n))
	l.mu.Unlock()
	for _, e := range errs {
		l.sendErr(ErrTimeExceeded, 1, 0, mbuf.New(e.ctx), e.rcvIf)
	}
}
