package ipv6

import (
	"testing"

	"bsd6/internal/inet"
	"bsd6/internal/proto"
)

// fuzzHeader builds a base header carrying chain as its payload.
func fuzzHeader(nh uint8, chain []byte) []byte {
	h := &Header{NextHdr: nh, HopLimit: 64, PayloadLen: len(chain),
		Src: inet.IP6{0: 0xfe, 1: 0x80, 15: 1},
		Dst: inet.IP6{0: 0xfe, 1: 0x80, 15: 2}}
	return append(h.Marshal(nil), chain...)
}

// FuzzPreparse throws arbitrary bytes at the extension-header scan —
// the paper's "pre-parsing" pass — and checks the structural
// invariants of whatever it reports: every recorded header lies
// within the packet, the chain is contiguous from the base header,
// and the fast path (skip the scan when the first next-header is not
// an extension) agrees with the full scan.
func FuzzPreparse(f *testing.F) {
	f.Add(fuzzHeader(proto.UDP, []byte("payload")))
	// hop-by-hop (pad to 8) -> fragment -> UDP
	hbh := []byte{proto.Fragment, 0, 1, 4, 0, 0, 0, 0}
	frag := (&FragHeader{NextHdr: proto.UDP, Off: 8, More: true, ID: 7}).Marshal(nil)
	f.Add(fuzzHeader(proto.HopByHop, append(append(hbh, frag...), "data"...)))
	// routing header, then truncated mid-chain
	rh := []byte{proto.UDP, 1, 0, 1, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	f.Add(fuzzHeader(proto.Routing, rh))
	f.Add(fuzzHeader(proto.HopByHop, []byte{proto.UDP}))
	f.Add([]byte{0x60})

	f.Fuzz(func(t *testing.T, b []byte) {
		info, err := Preparse(b, false)
		if info != nil {
			at := HeaderLen
			for _, r := range info.Ext {
				if r.Offset != at || r.Len <= 0 || r.Offset+r.Len > len(b) {
					t.Fatalf("ext header %+v out of bounds/order in %d-byte packet", r, len(b))
				}
				at += r.Len
			}
			if err == nil && !info.Truncated && (info.FinalOff != at || info.FinalOff > len(b)) {
				t.Fatalf("FinalOff = %d, want %d (packet len %d)", info.FinalOff, at, len(b))
			}
		}

		fast, ferr := Preparse(b, true)
		if err == nil && ferr == nil && len(info.Ext) == 0 {
			if fast.Final != info.Final || fast.FinalOff != info.FinalOff {
				t.Fatalf("fast path disagrees: %+v vs %+v", fast, info)
			}
		}
	})
}
