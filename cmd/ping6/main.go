// ping6 demonstrates ICMPv6 echo over the simulated network, including
// the secured ping of §4: with -A the echoes are authenticated (and a
// missing association surfaces EIPSEC, with -strict the peer silently
// ignores cleartext pings, §5.3).
//
// Usage:
//
//	ping6 [-c count] [-s size] [-A] [-E] [-nokeys] [-strict]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"bsd6"
	"bsd6/internal/ipsec"
)

var (
	flagCount  = flag.Int("c", 4, "echo requests to send")
	flagSize   = flag.Int("s", 56, "payload bytes")
	flagAuth   = flag.Bool("A", false, "require authentication (AH)")
	flagEnc    = flag.Bool("E", false, "require encryption (ESP)")
	flagNoKeys = flag.Bool("nokeys", false, "with -A/-E: omit the security associations (shows EIPSEC)")
	flagStrict = flag.Bool("strict", false, "peer requires authentication on all input (silent drop of cleartext)")
)

func main() {
	flag.Parse()

	hub := bsd6.NewHub()
	local := bsd6.NewStack("local", bsd6.Options{})
	peer := bsd6.NewStack("peer", bsd6.Options{})
	defer local.Close()
	defer peer.Close()
	lIf := local.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	pIf := peer.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)
	_ = lIf
	lLL, _ := lIf.LinkLocal6(time.Now())
	dst, _ := pIf.LinkLocal6(time.Now())

	if (*flagAuth || *flagEnc) && !*flagNoKeys {
		authKey := []byte("0123456789abcdef")
		encKey := []byte("DESCBC!!")
		for _, s := range []*bsd6.Stack{local, peer} {
			if *flagAuth {
				s.Keys.Add(&bsd6.SA{SPI: 0x10, Src: lLL, Dst: dst, Proto: bsd6.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
				s.Keys.Add(&bsd6.SA{SPI: 0x11, Src: dst, Dst: lLL, Proto: bsd6.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
			}
			if *flagEnc {
				s.Keys.Add(&bsd6.SA{SPI: 0x20, Src: lLL, Dst: dst, Proto: bsd6.ProtoESPTransport, EncAlg: "des-cbc", EncKey: encKey})
				s.Keys.Add(&bsd6.SA{SPI: 0x21, Src: dst, Dst: lLL, Proto: bsd6.ProtoESPTransport, EncAlg: "des-cbc", EncKey: encKey})
			}
		}
	}
	pol := ipsec.SockOpts{}
	if *flagAuth {
		pol.Auth = ipsec.LevelRequire
	}
	if *flagEnc {
		pol.ESPTransport = ipsec.LevelRequire
	}
	local.Sec.SetSystemPolicy(pol)
	if *flagStrict {
		// The peer mandates authentication on all input: cleartext
		// pings vanish (§5.3: "unauthenticated ping will silently
		// fail as if the destination system were not reachable").
		peer.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})
	}

	type reply struct {
		seq  uint16
		size int
		at   time.Time
	}
	var mu sync.Mutex
	sent := map[uint16]time.Time{}
	replies := make(chan reply, *flagCount)
	local.ICMP6.OnEcho = func(src bsd6.IP6, id, seq uint16, payload []byte) {
		replies <- reply{seq: seq, size: len(payload), at: time.Now()}
	}

	fmt.Printf("PING6 %s: %d data bytes", dst, *flagSize)
	if *flagAuth {
		fmt.Print("  [AH keyed-md5]")
	}
	if *flagEnc {
		fmt.Print("  [ESP des-cbc]")
	}
	fmt.Println()

	got := 0
	for i := 1; i <= *flagCount; i++ {
		mu.Lock()
		sent[uint16(i)] = time.Now()
		mu.Unlock()
		err := local.Ping6(dst, 0x6666, uint16(i), make([]byte, *flagSize))
		if err != nil {
			if errors.Is(err, bsd6.EIPSEC) {
				fmt.Printf("ping6: sendmsg: EIPSEC (no security association for %s)\n", dst)
				os.Exit(2)
			}
			fmt.Println("ping6:", err)
			os.Exit(1)
		}
		select {
		case r := <-replies:
			mu.Lock()
			rtt := r.at.Sub(sent[r.seq])
			mu.Unlock()
			fmt.Printf("%d bytes from %s: icmp6_seq=%d hlim=64 time=%.3f ms\n", r.size, dst, r.seq, float64(rtt.Microseconds())/1000)
			got++
		case <-time.After(500 * time.Millisecond):
			fmt.Printf("request %d timed out\n", i)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("\n--- %s ping6 statistics ---\n", dst)
	fmt.Printf("%d packets transmitted, %d packets received, %.0f%% packet loss\n",
		*flagCount, got, 100*float64(*flagCount-got)/float64(*flagCount))
	if *flagAuth || *flagEnc {
		fmt.Printf("peer security input: auth ok %d, decrypt ok %d\n",
			peer.Sec.Stats.InAuthOK.Get(), peer.Sec.Stats.InDecryptOK.Get())
	}
	if got == 0 {
		os.Exit(2)
	}
}
