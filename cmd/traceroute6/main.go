// traceroute6 traces a path through the simulated network with
// increasing hop limits, driven by the ICMPv6 Time Exceeded messages
// of §4.1 ("Time Exceeded messages indicate ... a hop limit that has
// decremented to zero").
//
// The demo topology is a chain of routers:
//
//	src --- r1 --- r2 --- r3 --- dst
//
// Usage:
//
//	traceroute6 [-hops N]   (N routers in the chain, default 3)
package main

import (
	"flag"
	"fmt"
	"time"

	"bsd6"
)

var flagHops = flag.Int("hops", 3, "routers in the chain")

func main() {
	flag.Parse()
	n := *flagHops
	if n < 1 {
		n = 1
	}

	// Build the chain: n routers means n+1 links.
	hubs := make([]*bsd6.Hub, n+1)
	for i := range hubs {
		hubs[i] = bsd6.NewHub()
	}
	src := bsd6.NewStack("src", bsd6.Options{})
	defer src.Close()
	dst := bsd6.NewStack("dst", bsd6.Options{})
	defer dst.Close()

	mac := func(i, j int) bsd6.LinkAddr { return bsd6.LinkAddr{2, 0, 0, 0, byte(i), byte(j)} }
	addr := func(net, host int) bsd6.IP6 {
		a, _ := bsd6.ParseIP6(fmt.Sprintf("2001:db8:%x::%x", net, host))
		return a
	}

	srcIf := src.AttachLink(hubs[0], mac(0, 0xa), 1500)
	src.ConfigureV6(srcIf, addr(0, 0xa), 64)
	src.DefaultRoute6(addr(0, 1), srcIf.Name)

	routers := make([]*bsd6.Stack, n)
	routerAddrs := make([]bsd6.IP6, n)
	for i := 0; i < n; i++ {
		r := bsd6.NewStack(fmt.Sprintf("r%d", i+1), bsd6.Options{})
		defer r.Close()
		left := r.AttachLink(hubs[i], mac(i+1, 1), 1500)
		right := r.AttachLink(hubs[i+1], mac(i+1, 2), 1500)
		r.ConfigureV6(left, addr(i, 1), 64)
		r.ConfigureV6(right, addr(i+1, 2), 64)
		// Forward: default toward the next hop; backward: default
		// toward the previous.
		if i == n-1 {
			// last router is on the destination link; on-link route
			// covers it.
		} else {
			r.DefaultRoute6(addr(i+1, 1), right.Name)
		}
		// Routes back toward the source-side networks: via the
		// previous router (or on-link for the first).
		for b := 0; b <= i; b++ {
			back := addr(b, 0)
			e := &bsd6.RouteEntry{
				Family: bsd6.AFInet6, Dst: back[:], Plen: 64,
				Flags:   bsd6.RouteUp | bsd6.RouteGateway | bsd6.RouteStatic,
				Gateway: addr(i, 2), IfName: left.Name,
			}
			if b == i {
				continue // own left link is already on-link via ConfigureV6
			}
			r.RT.Add(e)
		}
		r.V6.Forwarding = true
		routers[i] = r
		routerAddrs[i] = addr(i, 1)
		_ = right
	}
	// Fix forwarding routes: router i reaches nets > i+1 via router i+1.
	for i := 0; i < n-1; i++ {
		routers[i].DefaultRoute6(addr(i+1, 1), routers[i].Interfaces()[1].Name)
	}

	dstIf := dst.AttachLink(hubs[n], mac(9, 0xd), 1500)
	dstAddr := addr(n, 0xd)
	dst.ConfigureV6(dstIf, dstAddr, 64)
	dst.DefaultRoute6(addr(n, 2), dstIf.Name)

	// Collect Time Exceeded reporters and echo replies.
	type event struct {
		kind string
		from bsd6.IP6
	}
	events := make(chan event, 8)
	src.ICMP6.OnErrorMsg = func(typ, code uint8, from bsd6.IP6, inner []byte) {
		if typ == 3 { // time exceeded
			events <- event{"hop", from}
		}
	}
	src.ICMP6.OnEcho = func(from bsd6.IP6, id, seq uint16, payload []byte) {
		events <- event{"done", from}
	}

	fmt.Printf("traceroute6 to %s, %d hops max\n", dstAddr, n+4)
	for ttl := 1; ttl <= n+4; ttl++ {
		start := time.Now()
		// An echo with a small hop limit; routers decrement and the
		// one that hits zero reports Time Exceeded (§4.1).
		if err := src.ICMP6.SendEchoHops(dstAddr, 0x6666, uint16(ttl), []byte("probe"), uint8(ttl)); err != nil {
			fmt.Printf("%2d  send error: %v\n", ttl, err)
			continue
		}
		select {
		case ev := <-events:
			rtt := float64(time.Since(start).Microseconds()) / 1000
			fmt.Printf("%2d  %-24s %.3f ms\n", ttl, ev.from, rtt)
			if ev.kind == "done" {
				fmt.Println("reached destination")
				return
			}
		case <-time.After(time.Second):
			fmt.Printf("%2d  *\n", ttl)
		}
	}
}
