// ipdump watches the simulated wire with tcpdump-style decoding while
// a scripted scenario runs: neighbor discovery, ping6, a UDP exchange,
// a TCP handshake, and authenticated+encrypted traffic.
//
// Usage:
//
//	ipdump
package main

import (
	"fmt"
	"os"
	"time"

	"bsd6"
	"bsd6/internal/dump"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
)

func main() {
	hub := bsd6.NewHub()
	a := bsd6.NewStack("a", bsd6.Options{})
	b := bsd6.NewStack("b", bsd6.Options{})
	defer a.Close()
	defer b.Close()
	aIf := a.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	bIf := b.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)
	a.ConfigureV4(aIf, bsd6.IP4{10, 0, 0, 1}, 24)
	b.ConfigureV4(bIf, bsd6.IP4{10, 0, 0, 2}, 24)
	aLL, _ := aIf.LinkLocal6(time.Now())
	bLL, _ := bIf.LinkLocal6(time.Now())

	stop := dump.Sniff(hub, os.Stdout)
	defer stop()

	fmt.Println("--- ping6 (triggers neighbor discovery) ---")
	a.Ping6(bLL, 1, 1, []byte("hello"))
	time.Sleep(50 * time.Millisecond)

	fmt.Println("--- ping (IPv4: ARP then ICMP) ---")
	a.Ping4(bsd6.IP4{10, 0, 0, 2}, 1, 1, []byte("hello"))
	time.Sleep(50 * time.Millisecond)

	fmt.Println("--- UDP datagram ---")
	srv, _ := b.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	srv.Bind(bsd6.Sockaddr6{Family: bsd6.AFInet6, Port: 53})
	cli, _ := a.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	cli.SendTo([]byte("query"), bsd6.Addr6(bLL, 53))
	time.Sleep(50 * time.Millisecond)

	fmt.Println("--- TCP handshake and close ---")
	l, _ := b.NewSocket(bsd6.AFInet6, bsd6.SockStream)
	l.Bind(bsd6.Sockaddr6{Family: bsd6.AFInet6, Port: 80})
	l.Listen(1)
	c, _ := a.NewSocket(bsd6.AFInet6, bsd6.SockStream)
	if err := c.Connect(bsd6.Addr6(bLL, 80), 2*time.Second); err == nil {
		c.Send([]byte("GET /"), time.Second)
		time.Sleep(50 * time.Millisecond)
		c.Close()
	}
	time.Sleep(100 * time.Millisecond)

	fmt.Println("--- authenticated + encrypted datagram (AH outside ESP) ---")
	authKey := []byte("0123456789abcdef")
	encKey := []byte("DESCBC!!")
	for _, s := range []*bsd6.Stack{a, b} {
		s.Keys.Add(&key.SA{SPI: 0x1111, Src: aLL, Dst: bLL, Proto: bsd6.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
		s.Keys.Add(&key.SA{SPI: 0x2222, Src: aLL, Dst: bLL, Proto: bsd6.ProtoESPTransport, EncAlg: "des-cbc", EncKey: encKey})
	}
	sec, _ := a.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	sec.SetSecurity(bsd6.SoSecurityAuthentication, ipsec.LevelRequire)
	sec.SetSecurity(bsd6.SoSecurityEncryptTrans, ipsec.LevelRequire)
	sec.SendTo([]byte("secret"), bsd6.Addr6(bLL, 53))
	time.Sleep(50 * time.Millisecond)
}
