// ipbench regenerates the paper's evaluation tables and figure (§7)
// over two simulated stacks, printing rows in the paper's format.
//
// Usage:
//
//	ipbench [-t table1|table2|table3|table4|table5|figure8|micro|conns|stream|tunnel|topo|all] [-iters N] [-mb N] [-json] [-tag NAME] [-baseline]
//
// -t also accepts a comma-separated list (e.g. -t table5,tunnel) so
// one run — and one JSON report — can cover several tables.
//
// With -json, every measured cell is also written to BENCH_<date>.json
// so before/after runs can be diffed mechanically.  -tag inserts a
// suffix into the filename (several runs can then coexist on one
// date), and -baseline appends "-baseline" — the convention for the
// pre-change run of a before/after pair.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"bsd6"
	"bsd6/internal/core"
	"bsd6/internal/inet"
	"bsd6/internal/netperf"
	"bsd6/internal/pcb"
	"bsd6/internal/topo"
)

var (
	flagTable    = flag.String("t", "all", "which table/figure to regenerate")
	flagIters    = flag.Int("iters", 2000, "request-response transactions per cell")
	flagMB       = flag.Int("mb", 8, "megabytes per throughput cell")
	flagJSON     = flag.Bool("json", false, "also write results to BENCH_<date>.json")
	flagTag      = flag.String("tag", "", "suffix for the BENCH_<date> filename")
	flagBaseline = flag.Bool("baseline", false, "mark this run as the baseline of a before/after pair")
	flagProfile  = flag.String("cpuprofile", "", "write a CPU profile of the measured region to this file")
	flagNoBatch  = flag.Bool("nobatch", false, "disable datapath batching (burst dequeue, GRO, GSO) in the measured stacks")
)

// latencyCell is one row of a request-response table (Tables 1-2,
// Figure 8): best-of-three mean RTT per IP version, in microseconds.
type latencyCell struct {
	Proto string  `json:"proto,omitempty"`
	Size  int     `json:"size"`
	V4us  float64 `json:"v4_us"`
	V6us  float64 `json:"v6_us"`
}

// streamCell is one row of a throughput table (Tables 3-4):
// best-of-three receiver-side KB/s per IP version.
type streamCell struct {
	Size    int     `json:"size"`
	Sockbuf int     `json:"sockbuf"`
	V4KBps  float64 `json:"v4_kbps"`
	V6KBps  float64 `json:"v6_kbps"`
}

// securityCell is one row of Table 5: IPv6 TCP throughput under a
// security configuration.  Alg names the transform family (the paper's
// des-cbc/keyed-md5 oracles or the AEAD entries), SAs is the size of
// the association table the row was measured against, and Churn marks
// rows where PF_KEY mutations raced the datapath.
type securityCell struct {
	Security string  `json:"security"`
	Alg      string  `json:"alg,omitempty"`
	SAs      int     `json:"sas,omitempty"`
	Churn    bool    `json:"churn,omitempty"`
	KBps     float64 `json:"kbps"`
}

// microCell is one in-process micro-benchmark: per-call latency and
// the implied processing rate for a primitive the per-packet path
// leans on (today: the internet checksum at representative sizes).
type microCell struct {
	Name string  `json:"name"`
	NsOp float64 `json:"ns_op"`
	MBps float64 `json:"mb_s"`
}

// batchCell is one row of the batching table: bulk IPv6 TCP
// throughput with the datapath batching stages toggled individually,
// across netisr worker counts.
type batchCell struct {
	GRO     bool    `json:"gro"`
	GSO     bool    `json:"gso"`
	Workers int     `json:"workers"`
	KBps    float64 `json:"kbps"`
}

// tunnelCell is one row of the transition-path table: bulk TCP
// throughput across a configured tunnel, next to the native baselines
// so the encapsulation tax is legible.
type tunnelCell struct {
	Path string  `json:"path"`
	KBps float64 `json:"kbps"`
}

// topoCell is one row of the multi-hop forwarding table: end-to-end
// IPv6 throughput and packet rate through a chain of transit routers,
// every hop paying the full forwarding path (route lookup or held
// route, hop-limit decrement, re-transmit).
type topoCell struct {
	Routers int     `json:"routers"`
	Hops    int     `json:"hops"` // links traversed end to end
	TCPKBps float64 `json:"tcp_kbps"`
	UDPKBps float64 `json:"udp_kbps"`
	UDPpps  float64 `json:"udp_pps"`
}

// connCell is one row of the connection-scaling table: established
// demux latency and one full connection lifetime (attach, adopt tuple,
// demux, detach) against a PCB table of the given size.
type connCell struct {
	Conns    int     `json:"conns"`
	LookupNs float64 `json:"lookup_ns"`
	ChurnNs  float64 `json:"churn_ns"`
}

// report aggregates every measured cell for the -json output.
type report struct {
	Date    string         `json:"date"`
	Iters   int            `json:"iters"`
	MB      int            `json:"mb"`
	Table1  []latencyCell  `json:"table1,omitempty"`
	Table2  []latencyCell  `json:"table2,omitempty"`
	Table3  []streamCell   `json:"table3,omitempty"`
	Table4  []streamCell   `json:"table4,omitempty"`
	Table5  []securityCell `json:"table5,omitempty"`
	Figure8 []latencyCell  `json:"figure8,omitempty"`
	Micro   []microCell    `json:"micro,omitempty"`
	Conns   []connCell     `json:"conns,omitempty"`
	Stream  []batchCell    `json:"stream,omitempty"`
	Tunnel  []tunnelCell   `json:"tunnel,omitempty"`
	Topo    []topoCell     `json:"topo,omitempty"`
	// Snapshots holds the full counter state of every stack used by
	// the run, captured at teardown — the structured netstat that lets
	// a reader verify a cell was measured on a clean path (no retrans,
	// no drops) instead of trusting the throughput number alone.
	Snapshots []core.Snapshot `json:"snapshots,omitempty"`
}

var results report

type testbed struct {
	cli, srv *bsd6.Stack
	dst4     bsd6.IP4
	dst6     bsd6.IP6
	cli6     bsd6.IP6
	port     uint16
}

func newTestbed() *testbed {
	if *flagNoBatch {
		return newTestbedOpts(bsd6.Options{BurstSize: -1, GRO: -1, GSO: -1})
	}
	return newTestbedOpts(bsd6.Options{})
}

func newTestbedOpts(opts bsd6.Options) *testbed {
	hub := bsd6.NewHub()
	cli := bsd6.NewStack("cli", opts)
	srv := bsd6.NewStack("srv", opts)
	cIf := cli.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	sIf := srv.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)
	cli.ConfigureV4(cIf, bsd6.IP4{10, 0, 0, 1}, 24)
	srv.ConfigureV4(sIf, bsd6.IP4{10, 0, 0, 2}, 24)
	cliLL, _ := cIf.LinkLocal6(time.Now())
	srvLL, _ := sIf.LinkLocal6(time.Now())
	return &testbed{cli: cli, srv: srv, dst4: bsd6.IP4{10, 0, 0, 2}, dst6: srvLL, cli6: cliLL, port: 20000}
}

func (tb *testbed) close() {
	if *flagJSON {
		results.Snapshots = append(results.Snapshots, tb.cli.Snapshot(), tb.srv.Snapshot())
	}
	tb.cli.Close()
	tb.srv.Close()
}

func (tb *testbed) addr(v6 bool, port uint16) core.Sockaddr6 {
	if v6 {
		return bsd6.Addr6(tb.dst6, port)
	}
	return bsd6.Addr4(tb.dst4, port)
}

func (tb *testbed) nextPort() uint16 { tb.port++; return tb.port }

// keyOf derives a deterministic key of the size an algorithm switch
// entry demands.
func keyOf(n int) []byte {
	k := make([]byte, n)
	for i := range k {
		k[i] = byte(i*7 + 13)
	}
	return k
}

// saEpoch distinguishes successive setSAs generations: each gets
// distinct keys, so straggler packets from a previous row's dying
// connections fail the ICV harmlessly instead of decrypting under a
// same-keyed fresh association and sliding its replay window to their
// ancient sequence numbers.
var saEpoch byte

// setSAs flushes both engines and installs the four stream
// associations (AH + ESP transport in each direction) under the given
// transform family, so a Table 5 row measures exactly one algorithm
// generation.
func (tb *testbed) setSAs(ahAlg string, ahKey []byte, espAlg string, espKey []byte) {
	saEpoch++
	salt := func(k []byte) []byte {
		out := append([]byte(nil), k...)
		out[0] ^= saEpoch
		return out
	}
	ahKey, espKey = salt(ahKey), salt(espKey)
	for _, s := range []*bsd6.Stack{tb.cli, tb.srv} {
		s.Keys.Flush()
		s.Keys.Add(&bsd6.SA{SPI: 0x100, Src: tb.cli6, Dst: tb.dst6, Proto: bsd6.ProtoAH, AuthAlg: ahAlg, AuthKey: ahKey})
		s.Keys.Add(&bsd6.SA{SPI: 0x101, Src: tb.dst6, Dst: tb.cli6, Proto: bsd6.ProtoAH, AuthAlg: ahAlg, AuthKey: ahKey})
		s.Keys.Add(&bsd6.SA{SPI: 0x200, Src: tb.cli6, Dst: tb.dst6, Proto: bsd6.ProtoESPTransport, EncAlg: espAlg, EncKey: espKey})
		s.Keys.Add(&bsd6.SA{SPI: 0x201, Src: tb.dst6, Dst: tb.cli6, Proto: bsd6.ProtoESPTransport, EncAlg: espAlg, EncKey: espKey})
	}
}

// addDecoySAs grows both association tables to n entries with
// associations for unrelated destinations: they load the SPI shards
// and the outbound destination index without ever matching the
// measured stream, which is exactly what a busy security gateway's
// table looks like.
func (tb *testbed) addDecoySAs(n int) {
	authKey := []byte("0123456789abcdef")
	for _, s := range []*bsd6.Stack{tb.cli, tb.srv} {
		for i := 0; i < n; i++ {
			dst := tb.dst6
			dst[15] ^= byte(i) | 0x80 // never the real peer
			dst[14] ^= byte(i >> 8)
			dst[13] ^= byte(i >> 16)
			s.Keys.Add(&bsd6.SA{SPI: uint32(0x10000 + i), Dst: dst, Proto: bsd6.ProtoAH,
				AuthAlg: "keyed-md5", AuthKey: authKey})
		}
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ipbench:", err)
	os.Exit(1)
}

// rr measures mean round-trip latency in microseconds.
func (tb *testbed) rr(tcp, v6 bool, size int) float64 {
	port := tb.nextPort()
	sv, err := netperf.NewEchoServer(tb.srv, tcp, port, 0, nil)
	if err != nil {
		die(err)
	}
	defer sv.Close()
	if _, err := netperf.RunRR(tb.cli, tb.addr(v6, port), tcp, size, 10, 0, nil); err != nil {
		die(err)
	}
	// Best of three trials: scheduling noise only ever adds latency.
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		res, err := netperf.RunRR(tb.cli, tb.addr(v6, port), tcp, size, *flagIters, 0, nil)
		if err != nil {
			die(err)
		}
		µs := float64(res.MeanRTT.Nanoseconds()) / 1e3
		if trial == 0 || µs < best {
			best = µs
		}
	}
	return best
}

// stream measures throughput in KB/s (best of three trials:
// scheduling noise only ever lowers throughput).
func (tb *testbed) stream(tcp, v6 bool, msgSize, sockbuf int, tune netperf.SocketTuner) float64 {
	port := tb.nextPort()
	sv, err := netperf.NewSinkServer(tb.srv, tcp, port, sockbuf, tune)
	if err != nil {
		die(err)
	}
	defer sv.Close()
	total := int64(*flagMB) << 20
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		res, err := netperf.RunStream(tb.cli, sv, tb.addr(v6, port), tcp, msgSize, sockbuf, total, tune)
		if err != nil {
			die(err)
		}
		if res.KBps > best {
			best = res.KBps
		}
	}
	return best
}

func pct(v4, v6 float64) string {
	return fmt.Sprintf("%+.0f%%", (v6-v4)/v4*100)
}

func latencyTable(title string, tcp bool) []latencyCell {
	fmt.Printf("\n%s (microseconds per request/response transaction)\n", title)
	fmt.Printf("%10s %12s %12s %10s\n", "bytes", "IPv4 (µs)", "IPv6 (µs)", "increase")
	tb := newTestbed()
	defer tb.close()
	var cells []latencyCell
	for _, size := range []int{1, 64, 1024, 2048, 4096, 8192} {
		v4 := tb.rr(tcp, false, size)
		v6 := tb.rr(tcp, true, size)
		fmt.Printf("%10d %12.1f %12.1f %10s\n", size, v4, v6, pct(v4, v6))
		cells = append(cells, latencyCell{Size: size, V4us: v4, V6us: v6})
	}
	return cells
}

func table3() {
	fmt.Println("\nTable 3: TCP Throughput (KB/s)")
	fmt.Printf("%10s %12s %12s %12s %10s\n", "data", "sockbuf", "IPv4", "IPv6", "drop")
	tb := newTestbed()
	defer tb.close()
	for _, sockbuf := range []int{57344, 32768, 8192} {
		for _, size := range []int{4096, 8192, 32768} {
			v4 := tb.stream(true, false, size, sockbuf, nil)
			v6 := tb.stream(true, true, size, sockbuf, nil)
			fmt.Printf("%10d %12d %12.0f %12.0f %9.2f%%\n", size, sockbuf, v4, v6, (v4-v6)/v4*100)
			results.Table3 = append(results.Table3, streamCell{Size: size, Sockbuf: sockbuf, V4KBps: v4, V6KBps: v6})
		}
	}
}

func table4() {
	fmt.Println("\nTable 4: UDP Throughput (KB/s)")
	fmt.Printf("%10s %12s %12s %12s %10s\n", "data", "sockbuf", "IPv4", "IPv6", "drop")
	tb := newTestbed()
	defer tb.close()
	for _, size := range []int{64, 1024} {
		v4 := tb.stream(false, false, size, 32767, nil)
		v6 := tb.stream(false, true, size, 32767, nil)
		fmt.Printf("%10d %12d %12.0f %12.0f %9.2f%%\n", size, 32767, v4, v6, (v4-v6)/v4*100)
		results.Table4 = append(results.Table4, streamCell{Size: size, Sockbuf: 32767, V4KBps: v4, V6KBps: v6})
	}
}

// secCases are the paper's four Table 5 configurations; the tuner sets
// the measured socket's required services.
var secCases = []struct {
	name string
	tune netperf.SocketTuner
}{
	{"None", nil},
	{"Authentication", func(s *core.Socket) {
		s.SetSecurity(bsd6.SoSecurityAuthentication, bsd6.LevelRequire)
	}},
	{"Encryption", func(s *core.Socket) {
		s.SetSecurity(bsd6.SoSecurityEncryptTrans, bsd6.LevelRequire)
	}},
	{"Both", func(s *core.Socket) {
		s.SetSecurity(bsd6.SoSecurityAuthentication, bsd6.LevelRequire)
		s.SetSecurity(bsd6.SoSecurityEncryptTrans, bsd6.LevelRequire)
	}},
}

func table5() {
	fmt.Println("\nTable 5: Impact of IPv6 Security On Throughput (ttcp-style, KB/s)")
	fmt.Printf("%-16s %-22s %8s %6s %12s\n", "Security", "Alg", "SAs", "churn", "Throughput")
	tb := newTestbed()
	defer tb.close()
	emit := func(security, alg string, sas int, churn bool, kbps float64) {
		c := "-"
		if churn {
			c = "yes"
		}
		fmt.Printf("%-16s %-22s %8d %6s %12.0f\n", security, alg, sas, c, kbps)
		results.Table5 = append(results.Table5, securityCell{
			Security: security, Alg: alg, SAs: sas, Churn: churn, KBps: kbps})
	}

	// The paper's table, twice over: once under the 1996 conformance
	// oracles (keyed-MD5 AH, DES-CBC ESP) and once under the AEAD
	// switch entries (HMAC-SHA-256 AH, AES-GCM ESP).  Trials are
	// interleaved across the four configurations so machine-load drift
	// hits every row equally; each row keeps its best.
	families := []struct {
		label         string
		ahAlg, espAlg string
		ahKey, espKey []byte
		algFor        [4]string // per-configuration alg column
	}{
		{label: "classic", ahAlg: "keyed-md5", espAlg: "des-cbc",
			ahKey: keyOf(16), espKey: []byte("DESCBC!!"),
			algFor: [4]string{"-", "keyed-md5", "des-cbc", "des-cbc+keyed-md5"}},
		{label: "aead", ahAlg: "hmac-sha256", espAlg: "aes-gcm",
			ahKey: keyOf(32), espKey: keyOf(20),
			algFor: [4]string{"-", "hmac-sha256", "aes-gcm", "aes-gcm+hmac-sha256"}},
	}
	for fi, fam := range families {
		tb.setSAs(fam.ahAlg, fam.ahKey, fam.espAlg, fam.espKey)
		best := make([]float64, len(secCases))
		for round := 0; round < 4; round++ {
			for i, c := range secCases {
				if fi == 1 && i == 0 {
					continue // the cleartext row does not change with the family
				}
				if v := tb.stream(true, true, 8192, 32768, c.tune); v > best[i] {
					best[i] = v
				}
			}
		}
		for i, c := range secCases {
			if fi == 1 && i == 0 {
				continue
			}
			emit(c.name, fam.algFor[i], 4, false, best[i])
		}
	}

	// SA-population scaling: the same AES-GCM ESP stream measured
	// against association tables of 1k and 100k entries.  With the
	// sharded SPI index and the PCB verdict cache these rows should
	// sit on top of the 4-entry row.
	for _, pop := range []int{1_000, 100_000} {
		fam := families[1]
		tb.setSAs(fam.ahAlg, fam.ahKey, fam.espAlg, fam.espKey)
		tb.addDecoySAs(pop - 4)
		best := 0.0
		for round := 0; round < 2; round++ {
			if v := tb.stream(true, true, 8192, 32768, secCases[2].tune); v > best {
				best = v
			}
		}
		emit("Encryption", "aes-gcm", pop, false, best)
	}

	// PF_KEY churn racing the datapath: unrelated associations are
	// added and deleted at full speed on both engines while the
	// AES-GCM stream runs.  Every mutation bumps the generation and
	// invalidates every cached verdict, so this row prices the
	// re-resolution path, not just the steady-state cache hit.
	{
		fam := families[1]
		tb.setSAs(fam.ahAlg, fam.ahKey, fam.espAlg, fam.espKey)
		tb.addDecoySAs(1_000 - 4)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, s := range []*bsd6.Stack{tb.cli, tb.srv} {
			wg.Add(1)
			go func(s *bsd6.Stack) {
				defer wg.Done()
				authKey := []byte("0123456789abcdef")
				for i := uint32(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					time.Sleep(50 * time.Microsecond)
					dst := tb.dst6
					dst[15] ^= 0xc3
					spi := uint32(0x40000 + i%512)
					if i%2 == 0 {
						s.Keys.Add(&bsd6.SA{SPI: spi, Dst: dst, Proto: bsd6.ProtoAH,
							AuthAlg: "keyed-md5", AuthKey: authKey})
					} else {
						s.Keys.Delete(spi-1, dst, bsd6.ProtoAH)
					}
				}
			}(s)
		}
		best := 0.0
		for round := 0; round < 2; round++ {
			if v := tb.stream(true, true, 8192, 32768, secCases[2].tune); v > best {
				best = v
			}
		}
		close(stop)
		wg.Wait()
		emit("Encryption", "aes-gcm", 1_000, true, best)
	}
}

func figure8() {
	fmt.Println("\nFigure 8: UDP and TCP Latency series (µs vs message size)")
	tb := newTestbed()
	defer tb.close()
	for _, proto := range []struct {
		name string
		tcp  bool
	}{{"UDP", false}, {"TCP", true}} {
		fmt.Printf("\n# %s latency\n# bytes IPv4 IPv6\n", proto.name)
		for _, size := range []int{1, 64, 256, 1024, 2048, 4096, 8192} {
			v4 := tb.rr(proto.tcp, false, size)
			v6 := tb.rr(proto.tcp, true, size)
			fmt.Printf("%7d %8.1f %8.1f\n", size, v4, v6)
			results.Figure8 = append(results.Figure8, latencyCell{Proto: proto.name, Size: size, V4us: v4, V6us: v6})
		}
	}
}

// checksumSink keeps the micro-benchmark loop observable so the
// checksum calls cannot be optimized away.
var checksumSink uint16

// micro times the internet checksum at the sizes the datapath
// actually sees: a TCP/IP header's worth, a small RR message, and a
// full Ethernet payload.  This is the cost every in/out packet pays
// twice (generate + verify), so it is recorded next to the tables it
// explains.
func micro() {
	fmt.Println("\nMicro: internet checksum (inet.Checksum)")
	fmt.Printf("%10s %12s %12s\n", "bytes", "ns/op", "MB/s")
	for _, size := range []int{20, 40, 576, 1500} {
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i * 7)
		}
		// Calibrate the iteration count until the timed region is long
		// enough to swamp timer granularity.
		iters := 1 << 12
		var elapsed time.Duration
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				checksumSink = inet.Checksum(buf)
			}
			elapsed = time.Since(start)
			if elapsed >= 100*time.Millisecond {
				break
			}
			iters *= 2
		}
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		mbs := float64(size) / ns * 1e3 // bytes/ns -> MB/s (1e6 B/s units are close enough at this scale)
		fmt.Printf("%10d %12.2f %12.0f\n", size, ns, mbs)
		results.Micro = append(results.Micro, microCell{
			Name: fmt.Sprintf("checksum-%d", size), NsOp: ns, MBps: mbs,
		})
	}
}

// lookupSink keeps the demux loop observable.
var lookupSink *pcb.PCB

// conns regenerates the connection-scaling table: the sharded demux's
// established-connection lookup and per-connection churn cost must stay
// flat as the PCB table grows from 10k to a million entries — the row
// pattern a linear-scan table turns into milliseconds.
func conns() {
	fmt.Println("\nConns: demux scaling (sharded PCB hash)")
	fmt.Printf("%10s %14s %14s\n", "conns", "lookup ns/op", "churn ns/op")
	local, err := inet.ParseIP6("2001:db8::1")
	if err != nil {
		die(err)
	}
	faddr := func(i int) inet.IP6 {
		a, _ := inet.ParseIP6("2001:db8:feed::")
		a[12], a[13], a[14], a[15] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		return a
	}
	// timeOp calibrates the iteration count like micro() does.
	timeOp := func(op func(i int)) float64 {
		iters := 1 << 10
		var elapsed time.Duration
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				op(i)
			}
			elapsed = time.Since(start)
			if elapsed >= 100*time.Millisecond {
				break
			}
			iters *= 2
		}
		return float64(elapsed.Nanoseconds()) / float64(iters)
	}
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		tb := pcb.NewTable()
		for i := 0; i < 4; i++ {
			l := tb.Attach(inet.AFInet6, nil)
			tb.SetTuple(l, inet.IP6{}, uint16(8000+i), inet.IP6{}, 0)
		}
		for i := 0; i < n; i++ {
			p := tb.Attach(inet.AFInet6, nil)
			tb.SetTuple(p, local, 8000, faddr(i), uint16(1024+i%60000))
		}
		lookup := timeOp(func(i int) {
			j := i % n
			lookupSink = tb.Lookup(local, 8000, faddr(j), uint16(1024+j%60000), false)
		})
		peer, _ := inet.ParseIP6("2001:db8:cafe::2")
		churn := timeOp(func(i int) {
			p := tb.Attach(inet.AFInet6, nil)
			tb.SetTuple(p, local, 9000, peer, uint16(1024+i%60000))
			lookupSink = tb.Lookup(local, 9000, peer, uint16(1024+i%60000), false)
			tb.Detach(p)
		})
		fmt.Printf("%10d %14.1f %14.1f\n", n, lookup, churn)
		results.Conns = append(results.Conns, connCell{Conns: n, LookupNs: lookup, ChurnNs: churn})
	}
}

// streamTable regenerates the batching table: bulk IPv6 TCP streaming
// with GRO (receive coalescing) and GSO (send super-segments) toggled
// one at a time, across netisr worker counts.  This is the table that
// justifies the batched datapath — the "both" row should pull away
// from the "neither" row at every worker count, and add workers
// without collapsing (sharded stats keep the counters off the shared
// cache lines the workers would otherwise fight over).
func streamTable() {
	fmt.Println("\nStream: batched-datapath TCP throughput, IPv6 (KB/s)")
	fmt.Printf("%6s %6s %9s %12s\n", "gro", "gso", "workers", "KB/s")
	onoff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	for _, cfg := range []struct{ gro, gso bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	} {
		for _, workers := range []int{1, 4, 8} {
			opts := bsd6.Options{NetisrWorkers: workers}
			if !cfg.gro {
				opts.GRO = -1
			}
			if !cfg.gso {
				opts.GSO = -1
			}
			tb := newTestbedOpts(opts)
			kbps := tb.stream(true, true, 1<<16, 1<<20, nil)
			tb.close()
			fmt.Printf("%6s %6s %9d %12.0f\n", onoff(cfg.gro), onoff(cfg.gso), workers, kbps)
			results.Stream = append(results.Stream, batchCell{
				GRO: cfg.gro, GSO: cfg.gso, Workers: workers, KBps: kbps,
			})
		}
	}
}

// tunnelStream builds a two-stack world whose hub carries only the
// outer protocol, joins the stacks with configured tunnels of the
// given mode, and measures bulk TCP throughput across the tunnel
// (best of three).  With espAlg set, gateway-style ESP tunnel-mode
// associations under that cipher cover the outer endpoints and a
// system-wide "use" policy wraps the encapsulated traffic — the full
// §3 composition.
func tunnelStream(mode bsd6.TunnelMode, espAlg string) float64 {
	var opts bsd6.Options
	if *flagNoBatch {
		opts = bsd6.Options{BurstSize: -1, GRO: -1, GSO: -1}
	}
	hub := bsd6.NewHub()
	cli := bsd6.NewStack("cli", opts)
	srv := bsd6.NewStack("srv", opts)
	defer func() {
		if *flagJSON {
			results.Snapshots = append(results.Snapshots, cli.Snapshot(), srv.Snapshot())
		}
		cli.Close()
		srv.Close()
	}()
	cIf := cli.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	sIf := srv.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)

	cfgC := bsd6.TunnelConfig{Name: "tun0", Mode: mode}
	cfgS := bsd6.TunnelConfig{Name: "tun0", Mode: mode}
	var core6C, core6S bsd6.IP6
	if mode == bsd6.Tunnel6in4 {
		v4C, v4S := bsd6.IP4{10, 0, 0, 1}, bsd6.IP4{10, 0, 0, 2}
		cli.ConfigureV4(cIf, v4C, 24)
		srv.ConfigureV4(sIf, v4S, 24)
		cfgC.Local4, cfgC.Remote4 = v4C, v4S
		cfgS.Local4, cfgS.Remote4 = v4S, v4C
	} else {
		core6C = mustIP6("2001:db8:c0::1")
		core6S = mustIP6("2001:db8:c0::2")
		cli.ConfigureV6(cIf, core6C, 64)
		srv.ConfigureV6(sIf, core6S, 64)
		cfgC.Local6, cfgC.Remote6 = core6C, core6S
		cfgS.Local6, cfgS.Remote6 = core6S, core6C
	}
	tunC, err := cli.AddTunnel(cfgC)
	if err != nil {
		die(err)
	}
	tunS, err := srv.AddTunnel(cfgS)
	if err != nil {
		die(err)
	}

	var dial func(port uint16) core.Sockaddr6
	if mode == bsd6.Tunnel4in6 {
		in4C, in4S := bsd6.IP4{192, 168, 7, 1}, bsd6.IP4{192, 168, 7, 2}
		cli.ConfigureV4(tunC.Ifp, in4C, 24)
		srv.ConfigureV4(tunS.Ifp, in4S, 24)
		dial = func(port uint16) core.Sockaddr6 { return bsd6.Addr4(in4S, port) }
	} else {
		in6C, in6S := mustIP6("fd00::1"), mustIP6("fd00::2")
		cli.ConfigureV6(tunC.Ifp, in6C, 64)
		srv.ConfigureV6(tunS.Ifp, in6S, 64)
		dial = func(port uint16) core.Sockaddr6 { return bsd6.Addr6(in6S, port) }
	}

	if espAlg != "" {
		encKey := []byte("DESCBC!!")
		if espAlg != "des-cbc" {
			encKey = keyOf(20) // aes-gcm: 16-byte key || 4-byte salt
		}
		for _, s := range []*bsd6.Stack{cli, srv} {
			s.Keys.Add(&bsd6.SA{SPI: 0x61, Src: core6C, Dst: core6S, Proto: bsd6.ProtoESPTunnel,
				EncAlg: espAlg, EncKey: encKey, SelDst: core6S, SelPlen: 128})
			s.Keys.Add(&bsd6.SA{SPI: 0x62, Src: core6S, Dst: core6C, Proto: bsd6.ProtoESPTunnel,
				EncAlg: espAlg, EncKey: encKey, SelDst: core6C, SelPlen: 128})
			s.Sec.SetSystemPolicy(bsd6.SockOpts{ESPTunnel: bsd6.LevelUse})
		}
	}

	port := uint16(21000)
	sv, err := netperf.NewSinkServer(srv, true, port, 57344, nil)
	if err != nil {
		die(err)
	}
	defer sv.Close()
	total := int64(*flagMB) << 20
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		res, err := netperf.RunStream(cli, sv, dial(port), true, 8192, 57344, total, nil)
		if err != nil {
			die(err)
		}
		if res.KBps > best {
			best = res.KBps
		}
	}
	return best
}

func mustIP6(s string) bsd6.IP6 {
	a, err := inet.ParseIP6(s)
	if err != nil {
		die(err)
	}
	return a
}

// tunnelTable prints the transition-path throughput rows: native
// baselines first, then each tunnel mode, then ESP-secured 6in6 — the
// encapsulation tax at each level of the transition stack.
func tunnelTable() {
	fmt.Println("\nTunnel: transition-path TCP throughput (KB/s)")
	fmt.Printf("%-22s %12s\n", "Path", "Throughput")
	row := func(name string, kbps float64) {
		fmt.Printf("%-22s %12.0f\n", name, kbps)
		results.Tunnel = append(results.Tunnel, tunnelCell{Path: name, KBps: kbps})
	}
	tb := newTestbed()
	row("native IPv4", tb.stream(true, false, 8192, 57344, nil))
	row("native IPv6", tb.stream(true, true, 8192, 57344, nil))
	tb.close()
	row("IPv6 over 6in4", tunnelStream(bsd6.Tunnel6in4, ""))
	row("IPv4 over 4in6", tunnelStream(bsd6.Tunnel4in6, ""))
	row("IPv6 over 6in6", tunnelStream(bsd6.Tunnel6in6, ""))
	row("6in6 + ESP (des-cbc)", tunnelStream(bsd6.Tunnel6in6, "des-cbc"))
	row("6in6 + ESP (aes-gcm)", tunnelStream(bsd6.Tunnel6in6, "aes-gcm"))
}

// topoTable measures end-to-end IPv6 throughput and UDP packet rate
// through line topologies with 1, 2 and 4 transit routers, on the real
// clock.  The single-router row should sit near the two-stack native
// numbers; each added hop then prices one more full forwarding pass —
// the table that keeps the multi-hop fast path honest.
func topoTable() {
	fmt.Println("\nTopo: multi-hop forwarding, IPv6 through router chains")
	fmt.Printf("%8s %6s %12s %12s %12s\n", "routers", "hops", "tcp KB/s", "udp KB/s", "udp pps")
	const udpMsg = 1024
	for _, routers := range []int{1, 2, 4} {
		n := routers + 2
		var opts core.Options
		if *flagNoBatch {
			opts = core.Options{BurstSize: -1, GRO: -1, GSO: -1}
		}
		nw, err := topo.Build(topo.Spec{Kind: topo.Line, N: n, Seed: 1, Stack: opts})
		if err != nil {
			die(err)
		}
		src := nw.Nodes[0].S
		dstNode := nw.Nodes[n-1]
		dst, _ := dstNode.Addr()
		total := int64(*flagMB) << 20

		bestStream := func(tcp bool, port uint16, msg, sockbuf int) float64 {
			sv, err := netperf.NewSinkServer(dstNode.S, tcp, port, sockbuf, nil)
			if err != nil {
				die(err)
			}
			defer sv.Close()
			best := 0.0
			for trial := 0; trial < 3; trial++ {
				res, err := netperf.RunStream(src, sv, bsd6.Addr6(dst, port), tcp, msg, sockbuf, total, nil)
				if err != nil {
					die(err)
				}
				if res.KBps > best {
					best = res.KBps
				}
			}
			return best
		}
		tcp := bestStream(true, 23000, 8192, 57344)
		udp := bestStream(false, 23001, udpMsg, 32767)
		pps := udp * 1024 / udpMsg
		if *flagJSON {
			for _, node := range nw.Nodes {
				results.Snapshots = append(results.Snapshots, node.S.Snapshot())
			}
		}
		nw.Close()
		fmt.Printf("%8d %6d %12.0f %12.0f %12.0f\n", routers, n-1, tcp, udp, pps)
		results.Topo = append(results.Topo, topoCell{
			Routers: routers, Hops: n - 1, TCPKBps: tcp, UDPKBps: udp, UDPpps: pps,
		})
	}
}

// writeJSON dumps the collected cells to BENCH_<date>[-tag][-baseline].json.
func writeJSON() {
	results.Date = time.Now().Format("2006-01-02")
	results.Iters = *flagIters
	results.MB = *flagMB
	suffix := ""
	if *flagTag != "" {
		suffix += "-" + *flagTag
	}
	if *flagBaseline {
		suffix += "-baseline"
	}
	name := fmt.Sprintf("BENCH_%s%s.json", time.Now().Format("2006-01-02"), suffix)
	data, err := json.MarshalIndent(&results, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(name, data, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("\nwrote %s\n", name)
}

func main() {
	flag.Parse()
	if *flagProfile != "" {
		f, err := os.Create(*flagProfile)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer pprof.StopCPUProfile()
	}
	run := func(name string) bool {
		if *flagTable == "all" {
			return true
		}
		for _, t := range strings.Split(*flagTable, ",") {
			if t == name {
				return true
			}
		}
		return false
	}
	if run("table1") {
		results.Table1 = latencyTable("Table 1: TCP Latency", true)
	}
	if run("table2") {
		results.Table2 = latencyTable("Table 2: UDP Latency", false)
	}
	if run("table3") {
		table3()
	}
	if run("table4") {
		table4()
	}
	if run("table5") {
		table5()
	}
	if run("figure8") {
		figure8()
	}
	if run("micro") {
		micro()
	}
	if run("conns") {
		conns()
	}
	if run("stream") {
		streamTable()
	}
	if run("tunnel") {
		tunnelTable()
	}
	if run("topo") {
		topoTable()
	}
	if *flagJSON {
		writeJSON()
	}
}
