// keyadm is the key(8) analog (§6.2): manual key management over the
// PF_KEY socket.  It runs a scripted session against a live stack,
// showing every PF_KEY message: REGISTER, ADD, GET, DUMP, an ACQUIRE
// triggered by a send that needs a missing association, and EXPIRE
// from lifetime enforcement.
//
// Usage:
//
//	keyadm [-quiet]
package main

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"bsd6"
	"bsd6/internal/core"
	"bsd6/internal/ipsec"
	"bsd6/internal/key"
)

var flagQuiet = flag.Bool("quiet", false, "suppress message dumps")

func show(dir string, m key.Message) {
	if *flagQuiet {
		return
	}
	if m.SA != nil {
		fmt.Printf("  %s %-13s %v\n", dir, m.Type, m.SA)
	} else if m.Dump != nil {
		fmt.Printf("  %s %-13s (%d entries)\n", dir, m.Type, len(m.Dump))
		for _, sa := range m.Dump {
			fmt.Printf("      %v\n", sa)
		}
	} else {
		fmt.Printf("  %s %-13s err=%v\n", dir, m.Type, m.Err)
	}
}

func send(s *key.Socket, m key.Message) key.Message {
	show("->", m)
	rep := s.Send(m)
	show("<-", rep)
	return rep
}

func main() {
	flag.Parse()

	hub := bsd6.NewHub()
	local := bsd6.NewStack("local", bsd6.Options{})
	peer := bsd6.NewStack("peer", bsd6.Options{})
	defer local.Close()
	defer peer.Close()
	lIf := local.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 1}, 1500)
	pIf := peer.AttachLink(hub, bsd6.LinkAddr{2, 0, 0, 0, 0, 2}, 1500)
	src, _ := lIf.LinkLocal6(time.Now())
	dst, _ := pIf.LinkLocal6(time.Now())

	fmt.Println("== keyadm: opening PF_KEY socket, registering as key management ==")
	ks := local.PFKey()
	defer ks.Close()
	send(ks, key.Message{Type: key.MsgRegister})

	fmt.Println("\n== installing a keyed-md5 AH association pair (one per direction, §3.1) ==")
	authKey := []byte("0123456789abcdef")
	out := &bsd6.SA{SPI: 0x1234, Src: src, Dst: dst, Proto: bsd6.ProtoAH,
		AuthAlg: "keyed-md5", AuthKey: authKey,
		SoftLife: 2 * time.Second, HardLife: 4 * time.Second}
	send(ks, key.Message{Type: key.MsgAdd, SA: out})
	in := &bsd6.SA{SPI: 0x4321, Src: dst, Dst: src, Proto: bsd6.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey}
	send(ks, key.Message{Type: key.MsgAdd, SA: in})
	// The peer needs the same associations (manual keying installs on
	// both ends, as key(8) would be run on each system).
	peer.Keys.Add(&bsd6.SA{SPI: 0x1234, Src: src, Dst: dst, Proto: bsd6.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})
	peer.Keys.Add(&bsd6.SA{SPI: 0x4321, Src: dst, Dst: src, Proto: bsd6.ProtoAH, AuthAlg: "keyed-md5", AuthKey: authKey})

	send(ks, key.Message{Type: key.MsgGet, SA: &bsd6.SA{SPI: 0x1234, Dst: dst, Proto: bsd6.ProtoAH}})
	send(ks, key.Message{Type: key.MsgDump})

	fmt.Println("\n== authenticated ping using the installed association ==")
	local.Sec.SetSystemPolicy(ipsec.SockOpts{Auth: ipsec.LevelRequire})
	got := make(chan struct{}, 1)
	local.ICMP6.OnEcho = func(bsd6.IP6, uint16, uint16, []byte) { got <- struct{}{} }
	if err := local.Ping6(dst, 1, 1, []byte("keyed")); err != nil {
		fmt.Println("ping failed:", err)
	}
	select {
	case <-got:
		fmt.Printf("reply received; peer auth-ok count = %d\n", peer.Sec.Stats.InAuthOK.Get())
	case <-time.After(time.Second):
		fmt.Println("no reply")
	}

	fmt.Println("\n== lifetimes: SOFT then HARD expire (kernel -> daemon notifications) ==")
	deadlineMsgs := time.After(8 * time.Second)
	expires := 0
	for expires < 2 {
		select {
		case m := <-ks.C:
			if m.Type == key.MsgExpire {
				kind := "SOFT"
				if m.Hard {
					kind = "HARD"
				}
				fmt.Printf("  <- SADB_EXPIRE (%s) %v\n", kind, m.SA)
				expires++
			}
		case <-deadlineMsgs:
			fmt.Println("  (expire notifications did not arrive)")
			expires = 2
		}
	}

	fmt.Println("\n== the outbound association is gone: the next send ACQUIREs ==")
	err := local.Ping6(dst, 1, 2, []byte("keyless"))
	switch {
	case errors.Is(err, bsd6.EIPSEC):
		fmt.Println("ping: EIPSEC (association delayed; ACQUIRE sent to this daemon)")
	case err == nil:
		fmt.Println("ping unexpectedly succeeded")
	default:
		fmt.Println("ping:", err)
	}
	select {
	case m := <-ks.C:
		if m.Type == key.MsgAcquire {
			fmt.Printf("  <- SADB_ACQUIRE for %s %v -> daemon would negotiate keys here (Photuris, §6.2)\n", m.SA.Proto, m.SA.Dst)
		}
	case <-time.After(time.Second):
		fmt.Println("  (no acquire)")
	}

	fmt.Println("\n== flush and final dump ==")
	send(ks, key.Message{Type: key.MsgFlush})
	send(ks, key.Message{Type: key.MsgDump})

	auth, enc := ipsec.Algorithms()
	fmt.Printf("\nalgorithm switches (§3.6): auth=%v enc=%v\n", auth, enc)
	_ = core.Sockaddr6{}
}
