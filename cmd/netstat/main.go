// netstat demonstrates the modified netstat(8) the paper ships: routes
// with neighbor reachability states (§4.3), protocol statistics, and
// the new IP security counters (§3.4).  It builds a small demo network
// (two hosts and a router), generates mixed cleartext and secured
// traffic, then prints each node's state.
//
// With -crawl it instead boots a generated multi-node topology, runs
// traffic (including across severed links, so the drop taxonomy has
// something to show), crawls the fleet's admin plane from n0, and
// prints the aggregated fleet report — the operator's eye view of a
// whole simulated internet.
//
// Usage:
//
//	netstat [-r] [-s] [-i]   (default: all sections)
//	netstat -crawl [-nodes N] [-seed S] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bsd6"
	"bsd6/internal/admin"
	"bsd6/internal/core"
	"bsd6/internal/icmp6"
	"bsd6/internal/topo"
	"bsd6/internal/vclock"
)

var (
	flagRoutes = flag.Bool("r", false, "routing tables only")
	flagStats  = flag.Bool("s", false, "protocol statistics only")
	flagIfs    = flag.Bool("i", false, "interfaces only")
	flagCrawl  = flag.Bool("crawl", false, "boot a generated topology and print its crawled fleet report")
	flagNodes  = flag.Int("nodes", 24, "node count for -crawl")
	flagSeed   = flag.Int64("seed", 7, "topology seed for -crawl")
	flagJSON   = flag.Bool("json", false, "with -crawl, print the fleet report as JSON instead of text")
)

func main() {
	flag.Parse()
	if *flagCrawl {
		crawl()
		return
	}

	// Topology: host A and router R on link 1; router R and host B on
	// link 2. R advertises a prefix on link 1 so A autoconfigures.
	hub1, hub2 := bsd6.NewHub(), bsd6.NewHub()
	a := bsd6.NewStack("hostA", bsd6.Options{})
	r := bsd6.NewStack("router", bsd6.Options{})
	b := bsd6.NewStack("hostB", bsd6.Options{})
	defer a.Close()
	defer r.Close()
	defer b.Close()

	aIf := a.AttachLink(hub1, bsd6.LinkAddr{2, 0, 0, 0, 0, 0xa}, 1500)
	r1 := r.AttachLink(hub1, bsd6.LinkAddr{2, 0, 0, 0, 0, 0x1}, 1500)
	r2 := r.AttachLink(hub2, bsd6.LinkAddr{2, 0, 0, 0, 0, 0x2}, 1500)
	bIf := b.AttachLink(hub2, bsd6.LinkAddr{2, 0, 0, 0, 0, 0xb}, 1500)

	prefix1, _ := bsd6.ParseIP6("2001:db8:1::")
	prefix2, _ := bsd6.ParseIP6("2001:db8:2::")
	r.ConfigureV6(r1, mustIP6("2001:db8:1::1"), 64)
	r.ConfigureV6(r2, mustIP6("2001:db8:2::1"), 64)
	r.EnableRouter6(r1.Name, bsd6.RouterConfig{
		Interval: time.Hour, Lifetime: time.Hour,
		Prefixes: []bsd6.PrefixInfo{{Prefix: prefix1, Plen: 64, OnLink: true, Autonomous: true}},
	})
	r.EnableRouter6(r2.Name, bsd6.RouterConfig{
		Interval: time.Hour, Lifetime: time.Hour,
		Prefixes: []bsd6.PrefixInfo{{Prefix: prefix2, Plen: 64, OnLink: true, Autonomous: true}},
	})
	a.SolicitRouters(aIf.Name)
	b.SolicitRouters(bIf.Name)
	waitDAD(a, aIf, prefix1)
	waitDAD(b, bIf, prefix2)

	// Traffic: pings across the router, a short UDP exchange, a
	// v4-mapped exchange (configure v4 on link 1 for it).
	a.ConfigureV4(aIf, bsd6.IP4{10, 0, 0, 1}, 24)
	r.ConfigureV4(r1, bsd6.IP4{10, 0, 0, 254}, 24)
	bAddr := autoconfAddr(bIf, prefix2)
	a.Ping6(bAddr, 1, 1, []byte("across the router"))
	a.Ping4(bsd6.IP4{10, 0, 0, 254}, 1, 1, []byte("v4 ping"))

	srv, _ := b.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	srv.Bind(core.Sockaddr6{Family: bsd6.AFInet6, Port: 7})
	go func() {
		for {
			data, from, err := srv.RecvFrom(512, 2*time.Second)
			if err != nil {
				return
			}
			srv.SendTo(data, from)
		}
	}()
	cli, _ := a.NewSocket(bsd6.AFInet6, bsd6.SockDgram)
	cli.SendTo([]byte("hello"), bsd6.Addr6(bAddr, 7))
	cli.RecvFrom(512, 2*time.Second)

	// A secured exchange, so the per-SA netstat rows (§3.4) have
	// byte/packet counters to show: AES-GCM ESP transport associations
	// between A and B, and a short TCP conversation that requires them.
	aAddr := autoconfAddr(aIf, prefix1)
	gcmKey := make([]byte, 20) // 16-byte AES-128 key || 4-byte salt
	for i := range gcmKey {
		gcmKey[i] = byte(i*5 + 1)
	}
	for _, s := range []*bsd6.Stack{a, b} {
		s.Keys.Add(&bsd6.SA{SPI: 0x1001, Src: aAddr, Dst: bAddr, Proto: bsd6.ProtoESPTransport,
			EncAlg: "aes-gcm", EncKey: gcmKey})
		s.Keys.Add(&bsd6.SA{SPI: 0x1002, Src: bAddr, Dst: aAddr, Proto: bsd6.ProtoESPTransport,
			EncAlg: "aes-gcm", EncKey: gcmKey})
	}
	tl, _ := b.NewSocket(bsd6.AFInet6, bsd6.SockStream)
	tl.SetSecurity(bsd6.SoSecurityEncryptTrans, bsd6.LevelRequire)
	tl.Bind(core.Sockaddr6{Family: bsd6.AFInet6, Port: 23})
	tl.Listen(1)
	tc, _ := a.NewSocket(bsd6.AFInet6, bsd6.SockStream)
	tc.SetSecurity(bsd6.SoSecurityEncryptTrans, bsd6.LevelRequire)
	if err := tc.Connect(bsd6.Addr6(bAddr, 23), 2*time.Second); err == nil {
		if ts, err := tl.Accept(2 * time.Second); err == nil {
			tc.Send([]byte("secured across the router"), 2*time.Second)
			ts.Recv(64, 2*time.Second)
			ts.Send([]byte("and back"), 2*time.Second)
			tc.Recv(64, 2*time.Second)
			ts.Close()
		}
		tc.Close()
	}
	tl.Close()
	time.Sleep(100 * time.Millisecond)

	all := !*flagRoutes && !*flagStats && !*flagIfs
	for _, s := range []*bsd6.Stack{a, r, b} {
		if all {
			fmt.Println(s.Netstat())
			fmt.Println(s.Ifconfig())
			continue
		}
		fmt.Printf("== %s ==\n", s.Name)
		if *flagIfs {
			fmt.Println(s.Ifconfig())
		}
		if *flagStats {
			fmt.Println(s.ProtoStats())
		}
		if *flagRoutes {
			fmt.Println(s.Netstat())
		}
	}
}

// crawl boots a Waxman topology on the virtual clock, pushes pings
// across it (healthy and through a severed link), then walks the
// admin plane from n0 and renders the fleet report.
func crawl() {
	nw, err := topo.Build(topo.Spec{
		Kind: topo.Waxman, N: *flagNodes, Seed: *flagSeed,
		Clock: vclock.NewVirtual(time.Unix(0, 0)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netstat:", err)
		os.Exit(1)
	}
	defer nw.Close()
	nw.Start()

	// Healthy transit: ping from n0 to every fourth node so routers
	// have forwarding counters worth reporting.
	for i := 1; i < len(nw.Nodes); i += 4 {
		if dst, ok := nw.Nodes[i].Addr(); ok {
			nw.Nodes[0].S.Ping6(dst, uint16(i), 1, []byte("fleet"))
		}
	}
	quiesce(nw)
	// Sever one link and ping across it: the report's drop taxonomy
	// should show typed link/no-route casualties, not silence.
	nw.SeverLink(0)
	for seq := uint16(1); seq <= 3; seq++ {
		far := nw.Links[0].B
		if dst, ok := nw.Nodes[far].Addr(); ok {
			nw.Nodes[nw.Links[0].A].S.Ping6(dst, 999, seq, []byte("into the void"))
		}
	}
	quiesce(nw)
	nw.HealAll()

	crawler := &admin.Crawler{Net: nw.Admin()}
	report, err := crawler.Crawl(nw.Nodes[0].Name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netstat:", err)
		os.Exit(1)
	}
	if *flagJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report)
		return
	}
	fmt.Printf("topology: %s, %d nodes, %d links, seed %d\n",
		nw.Spec.Kind, len(nw.Nodes), len(nw.Links), *flagSeed)
	fmt.Print(report.Render())
}

// quiesce waits for every in-flight packet and timer to drain (the
// virtual clock free-runs while we watch).
func quiesce(nw *topo.Network) {
	deadline := time.Now().Add(10 * time.Second)
	for nw.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

func mustIP6(s string) bsd6.IP6 {
	a, err := bsd6.ParseIP6(s)
	if err != nil {
		panic(err)
	}
	return a
}

func waitDAD(s *bsd6.Stack, ifp *bsd6.Interface, prefix bsd6.IP6) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, a := range ifp.Addrs6() {
			if a.Autoconf && !a.Tentative && !a.Duplicated {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("netstat: warning: autoconfiguration did not complete")
}

func autoconfAddr(ifp *bsd6.Interface, prefix bsd6.IP6) bsd6.IP6 {
	for _, a := range ifp.Addrs6() {
		if a.Autoconf {
			return a.Addr
		}
	}
	ll, _ := ifp.LinkLocal6(time.Now())
	return ll
}

var _ = icmp6.RouterConfig{}
